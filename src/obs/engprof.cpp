#include "obs/engprof.hpp"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <cstdarg>
#include <cstdio>

#include "obs/json.hpp"

namespace gemsd::obs {

namespace {

/// Log2-spaced histogram: bucket k holds observations <= 2^k (k = 0..20),
/// the last bucket everything larger. Fixed bucket edges keep the document
/// layout deterministic across runs of any length.
constexpr std::size_t kHistBuckets = 22;

std::size_t hist_bucket(double v) {
  double le = 1.0;
  for (std::size_t k = 0; k + 1 < kHistBuckets; ++k, le *= 2.0) {
    if (v <= le) return k;
  }
  return kHistBuckets - 1;
}

std::vector<EngProfHistBucket> hist_snapshot(
    const std::vector<std::uint64_t>& counts) {
  std::vector<EngProfHistBucket> out;
  double le = 1.0;
  for (std::size_t k = 0; k < counts.size(); ++k, le *= 2.0) {
    out.push_back(EngProfHistBucket{k + 1 < counts.size() ? le : -1.0,
                                    counts[k]});
  }
  return out;
}

double safe_div(double a, double b) { return b > 0 ? a / b : 0.0; }

std::string lp_label(const EngProfile& p, int lp) {
  if (lp >= 0 && static_cast<std::size_t>(lp) < p.lp_names.size()) {
    return p.lp_names[static_cast<std::size_t>(lp)];
  }
  return "lp" + std::to_string(lp);
}

}  // namespace

const char* to_string(EngWindowKind k) {
  switch (k) {
    case EngWindowKind::Normal: return "normal";
    case EngWindowKind::Final: return "final";
    case EngWindowKind::Degenerate: return "degenerate";
  }
  return "?";
}

EngProfiler::EngProfiler(std::size_t window_capacity)
    : epoch_(std::chrono::steady_clock::now()),
      width_hist_(kHistBuckets, 0),
      events_hist_(kHistBuckets, 0),
      cap_(window_capacity > 0 ? window_capacity : 1) {}

void EngProfiler::attach(int workers, std::vector<std::string> lp_names) {
  if (attached_) return;
  attached_ = true;
  workers_ = workers;
  num_lps_ = lp_names.size();
  slots_.resize(num_lps_);
  lps_.resize(num_lps_);
  for (std::size_t i = 0; i < num_lps_; ++i) lps_[i].name = lp_names[i];
  ring_.reserve(std::min(cap_, std::size_t{1} << 12));
}

void EngProfiler::window_begin(double wall_start_s, sim::SimTime t_min,
                               sim::SimTime bound, EngWindowKind kind,
                               int limit_src, int limit_dst,
                               sim::SimTime limit_la) {
  cur_ = EngProfWindow{};
  cur_.seq = windows_;
  cur_.t_min = t_min;
  cur_.bound = bound;
  cur_.kind = kind;
  cur_.limit_src = static_cast<std::int16_t>(limit_src);
  cur_.limit_dst = static_cast<std::int16_t>(limit_dst);
  cur_.wall_start_s = wall_start_s;
  cur_limit_la_ = limit_la;
  open_ = true;
  for (auto& s : slots_) s = EngProfLpSlot{};
}

void EngProfiler::lp_ran(int lp, int worker, double exec_start_s,
                         double exec_end_s, std::uint64_t events) {
  EngProfLpSlot& s = slots_[static_cast<std::size_t>(lp)];
  s.exec_start_s = exec_start_s;
  s.exec_end_s = exec_end_s;
  s.events = events;
  s.worker = static_cast<std::int16_t>(worker);
}

void EngProfiler::window_end() {
  if (!open_) return;
  open_ = false;
  cur_.wall_end_s = now_s();
  const double wall = cur_.wall_end_s - cur_.wall_start_s;

  ++windows_;
  if (cur_.kind == EngWindowKind::Degenerate) ++degenerate_;
  if (cur_.kind == EngWindowKind::Final) ++final_;
  if (first_window_start_s_ < 0) first_window_start_s_ = cur_.wall_start_s;
  last_window_end_s_ = cur_.wall_end_s;
  windows_s_ += wall;
  ++width_hist_[hist_bucket((cur_.bound - cur_.t_min) * 1e6)];

  double max_exec = -1.0;
  int critical_lp = -1;
  std::uint64_t window_events = 0;
  for (std::size_t i = 0; i < num_lps_; ++i) {
    const EngProfLpSlot& s = slots_[i];
    EngProfLpStat& st = lps_[i];
    double stall;
    if (s.worker >= 0) {
      const double exec = s.exec_end_s - s.exec_start_s;
      ++st.windows_ran;
      st.events += s.events;
      window_events += s.events;
      st.exec_s += exec;
      st.idle_s += s.exec_start_s - cur_.wall_start_s;
      st.barrier_s += cur_.wall_end_s - s.exec_end_s;
      execute_s_ += exec;
      stall = wall - exec;
      if (exec > max_exec) {
        max_exec = exec;
        critical_lp = static_cast<int>(i);
      }
    } else {
      st.idle_s += wall;
      stall = wall;
    }
    if (cur_.kind == EngWindowKind::Degenerate) {
      st.stall_degenerate_s += stall;
    } else if (s.worker >= 0) {
      st.stall_lookahead_s += stall;
    } else {
      st.stall_queue_empty_s += stall;
    }
  }
  events_ += window_events;
  ++events_hist_[hist_bucket(static_cast<double>(window_events))];
  if (critical_lp >= 0) {
    critical_s_ += max_exec;
    ++lps_[static_cast<std::size_t>(critical_lp)].critical_windows;
  }
  // Final windows are bounded by the caller's end time, not by an edge.
  if (cur_.limit_src >= 0 && cur_.kind != EngWindowKind::Final) {
    EngProfEdgeStat& e = edges_[{cur_.limit_src, cur_.limit_dst}];
    e.src = cur_.limit_src;
    e.dst = cur_.limit_dst;
    e.lookahead = cur_limit_la_;
    ++e.windows_bound;
  }

  // Ring append (overwrite the oldest once full).
  if (count_ < cap_) {
    ring_.push_back(cur_);
    ring_slots_.insert(ring_slots_.end(), slots_.begin(), slots_.end());
    ++count_;
  } else {
    ring_[head_] = cur_;
    std::copy(slots_.begin(), slots_.end(),
              ring_slots_.begin() +
                  static_cast<std::ptrdiff_t>(head_ * num_lps_));
    if (++head_ == cap_) head_ = 0;
    ++ring_dropped_;
  }
}

EngProfile EngProfiler::snapshot() const {
  EngProfile p;
  p.workers = workers_;
  for (const auto& st : lps_) p.lp_names.push_back(st.name);
  p.windows = windows_;
  p.degenerate_windows = degenerate_;
  p.final_windows = final_;
  p.events = events_;
  p.profiled_s =
      first_window_start_s_ < 0 ? 0.0
                                : last_window_end_s_ - first_window_start_s_;
  p.windows_s = windows_s_;
  p.execute_s = execute_s_;
  p.critical_s = critical_s_;
  p.measured_speedup = safe_div(execute_s_, p.profiled_s);
  p.speedup_bound = safe_div(execute_s_, critical_s_);
  p.window_us_hist = hist_snapshot(width_hist_);
  p.window_events_hist = hist_snapshot(events_hist_);
  p.lps = lps_;
  for (const auto& [key, e] : edges_) p.edges.push_back(e);
  std::sort(p.edges.begin(), p.edges.end(),
            [](const EngProfEdgeStat& a, const EngProfEdgeStat& b) {
              if (a.windows_bound != b.windows_bound) {
                return a.windows_bound > b.windows_bound;
              }
              if (a.src != b.src) return a.src < b.src;
              return a.dst < b.dst;
            });
  p.ring_capacity = cap_;
  p.ring_dropped = ring_dropped_;
  // Chronological ring: oldest at head_ once wrapped.
  p.ring.reserve(count_);
  p.ring_slots.reserve(count_ * num_lps_);
  for (std::size_t i = 0; i < count_; ++i) {
    const std::size_t at = count_ < cap_ ? i : (head_ + i) % cap_;
    p.ring.push_back(ring_[at]);
    p.ring_slots.insert(
        p.ring_slots.end(),
        ring_slots_.begin() + static_cast<std::ptrdiff_t>(at * num_lps_),
        ring_slots_.begin() + static_cast<std::ptrdiff_t>((at + 1) * num_lps_));
  }
  return p;
}

namespace {

void write_hist(JsonWriter& w, const char* key,
                const std::vector<EngProfHistBucket>& h) {
  w.key(key);
  w.begin_array();
  for (const auto& b : h) {
    if (b.count == 0) continue;  // fixed edges; empty buckets add no info
    w.begin_object();
    w.kv("le", b.le);
    w.kv("count", static_cast<std::uint64_t>(b.count));
    w.end_object();
  }
  w.end_array();
}

}  // namespace

std::string engprof_json(
    const EngProfile& p,
    const std::vector<std::pair<std::string, std::string>>& metadata) {
  JsonWriter w;
  w.begin_object();
  w.kv("schema", "gemsd.engprof.v1");
  for (const auto& [k, raw] : metadata) {
    w.key(k);
    w.raw(raw);
  }
  w.kv("workers", static_cast<std::int64_t>(p.workers));
  w.kv("lps", static_cast<std::int64_t>(p.lp_names.size()));
  w.kv("windows", static_cast<std::uint64_t>(p.windows));
  w.kv("degenerate_windows", static_cast<std::uint64_t>(p.degenerate_windows));
  w.kv("final_windows", static_cast<std::uint64_t>(p.final_windows));
  w.kv("events", static_cast<std::uint64_t>(p.events));
  w.key("wall");
  w.begin_object();
  w.kv("profiled_s", p.profiled_s);
  w.kv("windows_s", p.windows_s);
  w.kv("execute_s", p.execute_s);
  w.kv("critical_s", p.critical_s);
  w.end_object();
  w.key("speedup");
  w.begin_object();
  w.kv("measured", p.measured_speedup);
  w.kv("bound", p.speedup_bound);
  w.end_object();
  write_hist(w, "window_us_hist", p.window_us_hist);
  write_hist(w, "window_events_hist", p.window_events_hist);
  w.key("lp");
  w.begin_array();
  for (std::size_t i = 0; i < p.lps.size(); ++i) {
    const EngProfLpStat& st = p.lps[i];
    w.begin_object();
    w.kv("id", static_cast<std::int64_t>(i));
    w.kv("name", st.name);
    w.kv("windows_ran", static_cast<std::uint64_t>(st.windows_ran));
    w.kv("critical_windows",
         static_cast<std::uint64_t>(st.critical_windows));
    w.kv("events", static_cast<std::uint64_t>(st.events));
    w.kv("exec_s", st.exec_s);
    w.kv("idle_s", st.idle_s);
    w.kv("barrier_s", st.barrier_s);
    w.key("stall_s");
    w.begin_object();
    w.kv("lookahead", st.stall_lookahead_s);
    w.kv("degenerate", st.stall_degenerate_s);
    w.kv("queue_empty", st.stall_queue_empty_s);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.key("edges");
  w.begin_array();
  for (const EngProfEdgeStat& e : p.edges) {
    w.begin_object();
    w.kv("src", static_cast<std::int64_t>(e.src));
    w.kv("dst", static_cast<std::int64_t>(e.dst));
    w.kv("src_name", lp_label(p, e.src));
    w.kv("dst_name", lp_label(p, e.dst));
    w.kv("lookahead_us", e.lookahead * 1e6);
    w.kv("windows_bound", static_cast<std::uint64_t>(e.windows_bound));
    w.end_object();
  }
  w.end_array();
  w.key("ring");
  w.begin_object();
  w.kv("capacity", static_cast<std::uint64_t>(p.ring_capacity));
  w.kv("recorded", static_cast<std::uint64_t>(p.ring.size()));
  w.kv("dropped", static_cast<std::uint64_t>(p.ring_dropped));
  w.end_object();
  w.end_object();
  return w.take();
}

namespace {

void emit_meta(JsonWriter& w, const char* what, std::int64_t pid,
               std::int64_t tid, const std::string& name) {
  w.begin_object();
  w.kv("ph", "M");
  w.kv("name", what);
  w.kv("pid", pid);
  if (tid >= 0) w.kv("tid", tid);
  w.key("args");
  w.begin_object();
  w.kv("name", name);
  w.end_object();
  w.end_object();
}

void begin_span(JsonWriter& w, const std::string& name, const char* cat,
                std::int64_t pid, std::int64_t tid, double t0_s,
                double t1_s) {
  w.begin_object();
  w.kv("name", name);
  w.kv("cat", cat);
  w.kv("ph", "X");
  w.kv("pid", pid);
  w.kv("tid", tid);
  w.kv("ts", t0_s * 1e6);  // wall microseconds since the profiler epoch
  w.kv("dur", (t1_s - t0_s) * 1e6);
}

}  // namespace

std::string engprof_chrome_json(
    const EngProfile& p,
    const std::vector<std::pair<std::string, std::string>>& metadata) {
  // Track layout: pid 0 = the coordinator's window sequence, pid 1 = one
  // lane per worker (what each thread actually ran), pid 2 = one lane per
  // LP (execute/idle/barrier classes with the stall cause).
  constexpr std::int64_t kPidWindows = 0, kPidWorkers = 1, kPidLps = 2;
  const std::size_t n = p.lp_names.size();

  JsonWriter w;
  w.begin_object();
  w.kv("displayTimeUnit", "ms");
  w.key("otherData");
  w.begin_object();
  w.kv("schema", "gemsd.engprof.trace.v1");
  for (const auto& [k, raw] : metadata) {
    w.key(k);
    w.raw(raw);
  }
  w.kv("workers", static_cast<std::int64_t>(p.workers));
  w.kv("windows_recorded", static_cast<std::uint64_t>(p.ring.size()));
  w.kv("windows_dropped", static_cast<std::uint64_t>(p.ring_dropped));
  w.end_object();

  w.key("traceEvents");
  w.begin_array();
  emit_meta(w, "process_name", kPidWindows, -1, "engine windows");
  emit_meta(w, "process_name", kPidWorkers, -1, "workers");
  emit_meta(w, "process_name", kPidLps, -1, "logical processes");
  for (int v = 0; v < p.workers; ++v) {
    emit_meta(w, "thread_name", kPidWorkers, v,
              v == 0 ? "worker 0 (coordinator)"
                     : "worker " + std::to_string(v));
  }
  for (std::size_t i = 0; i < n; ++i) {
    emit_meta(w, "thread_name", kPidLps, static_cast<std::int64_t>(i),
              p.lp_names[i]);
  }

  for (std::size_t wi = 0; wi < p.ring.size(); ++wi) {
    const EngProfWindow& win = p.ring[wi];
    begin_span(w, to_string(win.kind), "window", kPidWindows, 0,
               win.wall_start_s, win.wall_end_s);
    w.key("args");
    w.begin_object();
    w.kv("seq", static_cast<std::uint64_t>(win.seq));
    w.kv("t_min_s", win.t_min);
    w.kv("bound_s", win.bound);
    if (win.limit_src >= 0) {
      w.kv("limit", lp_label(p, win.limit_src) + " -> " +
                        lp_label(p, win.limit_dst));
    }
    w.end_object();
    w.end_object();

    for (std::size_t i = 0; i < n; ++i) {
      const EngProfLpSlot& s = p.ring_slots[wi * n + i];
      const auto tid = static_cast<std::int64_t>(i);
      if (s.worker >= 0) {
        // Worker lane: what this thread ran.
        begin_span(w, p.lp_names[i], "drain", kPidWorkers, s.worker,
                   s.exec_start_s, s.exec_end_s);
        w.key("args");
        w.begin_object();
        w.kv("window", static_cast<std::uint64_t>(win.seq));
        w.kv("events", static_cast<std::uint64_t>(s.events));
        w.end_object();
        w.end_object();
        // LP lane: idle / exec / barrier tiling the window.
        if (s.exec_start_s > win.wall_start_s) {
          begin_span(w, "idle", "lp", kPidLps, tid, win.wall_start_s,
                     s.exec_start_s);
          w.end_object();
        }
        begin_span(w, "exec", "lp", kPidLps, tid, s.exec_start_s,
                   s.exec_end_s);
        w.key("args");
        w.begin_object();
        w.kv("worker", static_cast<std::int64_t>(s.worker));
        w.kv("events", static_cast<std::uint64_t>(s.events));
        w.end_object();
        w.end_object();
        if (win.wall_end_s > s.exec_end_s) {
          begin_span(w, "barrier", "lp", kPidLps, tid, s.exec_end_s,
                     win.wall_end_s);
          w.end_object();
        }
      } else {
        const char* cause = win.kind == EngWindowKind::Degenerate
                                ? "stall:degenerate"
                                : "stall:queue-empty";
        begin_span(w, cause, "lp", kPidLps, tid, win.wall_start_s,
                   win.wall_end_s);
        w.end_object();
      }
    }
  }
  w.end_array();
  w.end_object();
  return w.take();
}

namespace {

double num_at(const JsonValue* v, const char* key) {
  if (!v) return 0.0;
  const JsonValue* f = v->find(key);
  return f && f->is_number() ? f->num : 0.0;
}

std::string str_at(const JsonValue* v, const char* key) {
  if (!v) return "";
  const JsonValue* f = v->find(key);
  return f && f->is_string() ? f->str : "";
}

std::vector<EngProfHistBucket> hist_at(const JsonValue& doc, const char* key) {
  std::vector<EngProfHistBucket> out;
  const JsonValue* h = doc.find(key);
  if (!h || !h->is_array()) return out;
  for (const JsonValue& b : h->arr) {
    out.push_back(EngProfHistBucket{
        num_at(&b, "le"),
        static_cast<std::uint64_t>(num_at(&b, "count"))});
  }
  return out;
}

}  // namespace

bool engprof_from_json(const JsonValue& doc, EngProfile& out,
                       std::string& error) {
  const JsonValue* schema = doc.find("schema");
  if (!schema || !schema->is_string() || schema->str != "gemsd.engprof.v1") {
    error = "not a gemsd.engprof.v1 document";
    return false;
  }
  out = EngProfile{};
  out.workers = static_cast<int>(num_at(&doc, "workers"));
  out.windows = static_cast<std::uint64_t>(num_at(&doc, "windows"));
  out.degenerate_windows =
      static_cast<std::uint64_t>(num_at(&doc, "degenerate_windows"));
  out.final_windows =
      static_cast<std::uint64_t>(num_at(&doc, "final_windows"));
  out.events = static_cast<std::uint64_t>(num_at(&doc, "events"));
  const JsonValue* wall = doc.find("wall");
  out.profiled_s = num_at(wall, "profiled_s");
  out.windows_s = num_at(wall, "windows_s");
  out.execute_s = num_at(wall, "execute_s");
  out.critical_s = num_at(wall, "critical_s");
  const JsonValue* sp = doc.find("speedup");
  out.measured_speedup = num_at(sp, "measured");
  out.speedup_bound = num_at(sp, "bound");
  out.window_us_hist = hist_at(doc, "window_us_hist");
  out.window_events_hist = hist_at(doc, "window_events_hist");
  const JsonValue* lps = doc.find("lp");
  if (lps && lps->is_array()) {
    for (const JsonValue& l : lps->arr) {
      EngProfLpStat st;
      st.name = str_at(&l, "name");
      st.windows_ran = static_cast<std::uint64_t>(num_at(&l, "windows_ran"));
      st.critical_windows =
          static_cast<std::uint64_t>(num_at(&l, "critical_windows"));
      st.events = static_cast<std::uint64_t>(num_at(&l, "events"));
      st.exec_s = num_at(&l, "exec_s");
      st.idle_s = num_at(&l, "idle_s");
      st.barrier_s = num_at(&l, "barrier_s");
      const JsonValue* stall = l.find("stall_s");
      st.stall_lookahead_s = num_at(stall, "lookahead");
      st.stall_degenerate_s = num_at(stall, "degenerate");
      st.stall_queue_empty_s = num_at(stall, "queue_empty");
      out.lps.push_back(st);
      out.lp_names.push_back(st.name);
    }
  }
  const JsonValue* edges = doc.find("edges");
  if (edges && edges->is_array()) {
    for (const JsonValue& e : edges->arr) {
      EngProfEdgeStat es;
      es.src = static_cast<std::int16_t>(num_at(&e, "src"));
      es.dst = static_cast<std::int16_t>(num_at(&e, "dst"));
      es.lookahead = num_at(&e, "lookahead_us") * 1e-6;
      es.windows_bound =
          static_cast<std::uint64_t>(num_at(&e, "windows_bound"));
      out.edges.push_back(es);
    }
  }
  const JsonValue* ring = doc.find("ring");
  out.ring_capacity = static_cast<std::size_t>(num_at(ring, "capacity"));
  out.ring_dropped = static_cast<std::uint64_t>(num_at(ring, "dropped"));
  return true;
}

namespace {

void appendf(std::string& s, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  s += buf;
}

double hist_quantile(const std::vector<EngProfHistBucket>& h, double q) {
  std::uint64_t total = 0;
  for (const auto& b : h) total += b.count;
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  std::uint64_t acc = 0;
  for (const auto& b : h) {
    acc += b.count;
    if (static_cast<double>(acc) >= target) return b.le;
  }
  return h.empty() ? 0.0 : h.back().le;
}

}  // namespace

std::string format_engprof(const EngProfile& p, int top_k) {
  std::string s;
  appendf(s, "== engine parallelism profile ==\n");
  appendf(s, "topology: %zu LPs, %d workers\n", p.lps.size(), p.workers);
  appendf(s,
          "windows: %" PRIu64 " (%" PRIu64 " degenerate, %" PRIu64
          " final); events: %" PRIu64 "\n",
          p.windows, p.degenerate_windows, p.final_windows, p.events);
  appendf(s,
          "wall: profiled %.3fs, execute %.3fs, critical path %.3fs\n",
          p.profiled_s, p.execute_s, p.critical_s);
  appendf(s,
          "speedup: measured %.2fx <= bound %.2fx (parallel efficiency "
          "%.0f%% of the bound)\n",
          p.measured_speedup, p.speedup_bound,
          p.speedup_bound > 0 ? 100.0 * p.measured_speedup / p.speedup_bound
                              : 0.0);
  const double w_p50 = hist_quantile(p.window_us_hist, 0.5);
  const double e_p50 = hist_quantile(p.window_events_hist, 0.5);
  appendf(s, "window width p50 <= %.0f us; events/window p50 <= %.0f\n",
          w_p50, e_p50);

  // Per-LP time classes. exec + idle + barrier tiles every window, so each
  // row sums to the summed window wall time (the reconciliation check).
  double stall_la = 0, stall_deg = 0, stall_qe = 0, worst_rel = 0;
  for (const auto& st : p.lps) {
    stall_la += st.stall_lookahead_s;
    stall_deg += st.stall_degenerate_s;
    stall_qe += st.stall_queue_empty_s;
    if (p.windows_s > 0) {
      const double sum = st.exec_s + st.idle_s + st.barrier_s;
      worst_rel = std::max(worst_rel,
                           std::abs(sum - p.windows_s) / p.windows_s);
    }
  }
  appendf(s,
          "stall by cause [LP-seconds]: lookahead-limited %.3f, degenerate "
          "%.3f, queue-empty %.3f\n",
          stall_la, stall_deg, stall_qe);
  appendf(s, "reconciliation: worst |exec+idle+barrier - windows| = %.2f%% "
             "of windows wall\n",
          worst_rel * 100.0);

  appendf(s, "\ntop straggler LPs (by critical windows):\n");
  std::vector<std::size_t> order(p.lps.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&p](std::size_t a, std::size_t b) {
    const auto& x = p.lps[a];
    const auto& y = p.lps[b];
    if (x.critical_windows != y.critical_windows) {
      return x.critical_windows > y.critical_windows;
    }
    if (x.exec_s != y.exec_s) return x.exec_s > y.exec_s;
    return a < b;
  });
  appendf(s, "  %-16s %9s %8s %9s %9s %9s %10s\n", "lp", "critical",
          "crit%", "exec[s]", "idle[s]", "barr[s]", "events");
  const std::size_t rows =
      std::min(order.size(), static_cast<std::size_t>(top_k < 0 ? 0 : top_k));
  for (std::size_t r = 0; r < rows; ++r) {
    const auto& st = p.lps[order[r]];
    appendf(s, "  %-16s %9" PRIu64 " %7.1f%% %9.3f %9.3f %9.3f %10" PRIu64
               "\n",
            st.name.c_str(), st.critical_windows,
            p.windows > 0 ? 100.0 * static_cast<double>(st.critical_windows) /
                                static_cast<double>(p.windows)
                          : 0.0,
            st.exec_s, st.idle_s, st.barrier_s, st.events);
  }

  appendf(s, "\nlimiting lookahead edges (by windows bound):\n");
  if (p.edges.empty()) {
    appendf(s, "  (none: no cross-LP edges, or only final windows)\n");
  }
  const std::size_t erows =
      std::min(p.edges.size(), static_cast<std::size_t>(top_k < 0 ? 0 : top_k));
  for (std::size_t r = 0; r < erows; ++r) {
    const auto& e = p.edges[r];
    appendf(s, "  %-16s -> %-16s la %8.1f us  bound %8" PRIu64
               " windows (%.1f%%)\n",
            lp_label(p, e.src).c_str(), lp_label(p, e.dst).c_str(),
            e.lookahead * 1e6, e.windows_bound,
            p.windows > 0 ? 100.0 * static_cast<double>(e.windows_bound) /
                                static_cast<double>(p.windows)
                          : 0.0);
  }
  if (p.ring_dropped > 0) {
    appendf(s,
            "\nnote: timeline ring kept the most recent %" PRIu64
            " of %" PRIu64 " windows (%" PRIu64 " dropped)\n",
            static_cast<std::uint64_t>(p.ring_capacity), p.windows,
            p.ring_dropped);
  }
  return s;
}

}  // namespace gemsd::obs
