#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "sim/engine_kind.hpp"
#include "sim/lp.hpp"
#include "sim/time.hpp"

namespace gemsd::obs {
class EngProfiler;
}

namespace gemsd::sim {

/// Counters the engine keeps about its own execution. Everything here is a
/// property of the schedule, not the model: identical for Sequential and
/// Parallel kinds and for any worker count.
struct EngineStats {
  std::uint64_t windows = 0;      ///< safe windows executed (= barrier count)
  std::uint64_t degenerate_windows = 0;  ///< zero-lookahead serialized steps
  std::uint64_t messages = 0;     ///< cross-LP messages routed at barriers
  std::uint64_t events = 0;       ///< events processed across all LPs
  std::size_t max_queue_depth = 0;  ///< per-LP event-queue high-water mark
  std::vector<std::uint64_t> lp_events;  ///< events processed, by LpId
};

/// Conservative parallel discrete-event engine: a set of logical processes
/// (each wrapping its own Scheduler, see sim/lp.hpp) advanced in lockstep
/// safe windows.
///
/// Window protocol. Let T = min over LPs of their next event time and L =
/// min lookahead over the registered cross-LP edges (infinity when there are
/// none — in particular for a single LP, which therefore runs at full
/// sequential speed in one window). Every message an LP posts while at local
/// time u >= T arrives at t >= u + lookahead(edge) >= T + L, so all events
/// strictly before the horizon H = T + L are causally independent across
/// LPs: each LP may process its own queue up to H with no further
/// coordination. At the barrier the outboxes are merged — sorted by
/// (t, src, seq), a strict total order — and delivered, making the schedule
/// (and therefore every simulation result) a pure function of the model:
/// identical for the Sequential and Parallel kinds and for any worker count.
///
/// A zero-lookahead edge collapses the window (H <= T). The engine then
/// degenerates to one serialized step: only the LP with the smallest
/// (next event time, LpId) runs, and only to exactly T — slow but still
/// correct and deterministic (see EngineStats::degenerate_windows).
class Engine {
 public:
  /// workers: parallel worker threads including the caller (Parallel kind
  /// only; 0 = hardware_concurrency, values are clamped to >= 1). The
  /// Sequential kind spawns no threads ever.
  explicit Engine(EngineKind kind = EngineKind::Sequential, int workers = 0);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Create the next logical process. All LPs must be added (and all
  /// lookahead edges registered) before the first run_until.
  Lp& add_lp(std::string name);

  /// Register the lower bound on the delivery delay of src -> dst messages:
  /// every post on this edge must satisfy t >= now + la. Edges that carry no
  /// lower-bounded latency must be registered with la = 0 (degenerating the
  /// safe window); posting on an edge that was never registered throws.
  void set_lookahead(LpId src, LpId dst, SimTime la);

  Lp& lp(LpId id) { return *lps_[static_cast<std::size_t>(id)]; }
  std::size_t num_lps() const { return lps_.size(); }
  EngineKind kind() const { return kind_; }
  /// Effective worker count (after clamping; 1 for Sequential).
  int workers() const { return workers_; }

  /// Process every event with timestamp <= end on every LP, then advance all
  /// LP clocks to end. Returns the number of events processed by this call.
  std::uint64_t run_until(SimTime end);

  /// Snapshot of the engine self-metrics (stable across identical runs).
  EngineStats stats() const;

  /// Attach the opt-in wall-clock parallelism profiler (obs/engprof.hpp), or
  /// detach with nullptr. Observation only: the profiler reads worker/LP
  /// wall-clock spans and never touches simulation state, so results stay
  /// bit-identical with it on or off at any worker count. The profiler must
  /// outlive every run_until made while attached.
  void set_profiler(obs::EngProfiler* p) { prof_ = p; }

  /// Safe windows executed so far (grows while run_until is in progress on
  /// the coordinator; used by the --progress heartbeat).
  std::uint64_t windows_executed() const { return windows_; }

 private:
  friend class Lp;

  /// Registered lookahead of the src -> dst edge; throws on an edge that was
  /// never registered (the horizon computation would be unsound).
  SimTime edge_lookahead(LpId src, LpId dst) const;
  /// The minimum registered lookahead edge (row-major argmin over the edge
  /// matrix — deterministic). la = +inf and src = dst = -1 when no edges are
  /// registered.
  struct MinEdge {
    SimTime la = 0;
    LpId src = -1;
    LpId dst = -1;
  };
  MinEdge min_edge() const;
  void route_outboxes();
  /// Run every LP with an event below the bound, on the worker pool when one
  /// exists. inclusive selects run_until (t <= bound) vs run_before
  /// (t < bound) semantics.
  void run_ready(SimTime bound, bool inclusive);
  void drain_ready(int worker);
  void worker_loop(int worker);
  std::uint64_t total_events() const;

  EngineKind kind_;
  int workers_;
  std::vector<std::unique_ptr<Lp>> lps_;
  std::vector<SimTime> lookahead_;  ///< n*n matrix; NaN = unregistered
  mutable MinEdge min_edge_cache_;
  mutable bool min_edge_valid_ = false;
  obs::EngProfiler* prof_ = nullptr;

  std::uint64_t windows_ = 0;
  std::uint64_t degenerate_windows_ = 0;
  std::uint64_t messages_ = 0;
  std::vector<Lp::Out> staged_;  ///< barrier merge scratch (reused)

  // Worker pool (Parallel kind with workers_ > 1). The coordinator publishes
  // a window (ready set + bound) under the mutex by bumping epoch_; workers
  // claim LPs off the shared index and report back through active_. All
  // window state below is written by the coordinator between barriers only.
  std::vector<std::thread> threads_;
  std::mutex mutex_;
  std::condition_variable cv_start_, cv_done_;
  std::uint64_t epoch_ = 0;
  int active_ = 0;
  bool stop_ = false;
  std::vector<Lp*> ready_;
  std::atomic<std::size_t> next_{0};
  SimTime window_bound_ = 0;
  bool window_inclusive_ = false;
  std::exception_ptr worker_error_;
};

}  // namespace gemsd::sim
