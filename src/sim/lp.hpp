#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace gemsd::sim {

class Engine;

/// Index of a logical process within its Engine (dense, assigned by add_lp).
using LpId = int;

/// One pending cross-LP delivery: run `fn` on the destination LP's scheduler
/// at absolute time `t`. The (t, src, seq) triple is a strict total order —
/// seq is per-source — so the coordinator's merge at each barrier delivers
/// messages in the same order no matter which worker produced them when.
struct LpMessage {
  SimTime t;
  LpId src;
  std::uint64_t seq;
  std::function<void()> fn;
};

/// A logical process: its own event queue (a whole Scheduler) plus an outbox
/// of cross-LP messages produced during the current safe window. All model
/// state owned by an LP is touched only while that LP runs, which a window
/// does on exactly one thread — the engine's barriers are the only
/// synchronization the model ever needs.
class Lp {
 public:
  LpId id() const { return id_; }
  const std::string& name() const { return name_; }
  Scheduler& sched() { return sched_; }
  const Scheduler& sched() const { return sched_; }

  /// Queue a cross-LP delivery: `fn` executes as an event on LP `dst` at
  /// absolute time `t`. The conservative contract is enforced here:
  /// t >= now + lookahead(id, dst), where the lookahead was registered with
  /// Engine::set_lookahead — posting on an unregistered edge is a model bug
  /// and throws. Messages sit in this LP's outbox (touched by no one else)
  /// until the window barrier routes them.
  void post(LpId dst, SimTime t, std::function<void()> fn);

  /// Cross-LP messages this LP has posted (lifetime total).
  std::uint64_t posted() const { return out_seq_; }

 private:
  friend class Engine;
  Lp(Engine* engine, LpId id, std::string name)
      : engine_(engine), id_(id), name_(std::move(name)) {}
  Lp(const Lp&) = delete;
  Lp& operator=(const Lp&) = delete;

  struct Out {
    LpId dst;
    LpMessage msg;
  };

  Engine* engine_;
  LpId id_;
  std::string name_;
  Scheduler sched_;
  std::vector<Out> outbox_;
  std::uint64_t out_seq_ = 0;
};

}  // namespace gemsd::sim
