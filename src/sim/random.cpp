#include "sim/random.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace gemsd::sim {

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  std::uniform_int_distribution<std::int64_t> d(lo, hi);
  return d(eng_);
}

double Rng::exponential(double mean) {
  if (mean <= 0.0) return 0.0;
  std::exponential_distribution<double> d(1.0 / mean);
  return d(eng_);
}

double Rng::normal(double mean, double stddev, double lo, double hi) {
  std::normal_distribution<double> d(mean, stddev);
  for (int i = 0; i < 64; ++i) {
    const double x = d(eng_);
    if (x >= lo && x <= hi) return x;
  }
  return std::clamp(mean, lo, hi);
}

ZipfGenerator::ZipfGenerator(std::size_t n, double theta) {
  if (n == 0) throw std::invalid_argument("ZipfGenerator: n must be > 0");
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), theta);
    cdf_[k] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

std::size_t ZipfGenerator::sample(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace gemsd::sim
