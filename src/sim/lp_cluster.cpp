#include "sim/lp_cluster.hpp"

#include <algorithm>
#include <coroutine>
#include <cstring>
#include <memory>
#include <vector>

#include "obs/engprof.hpp"
#include "sim/engine.hpp"
#include "sim/random.hpp"
#include "sim/resource.hpp"
#include "sim/task.hpp"

namespace gemsd::sim {

namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  return h;
}

std::uint64_t time_bits(SimTime t) {
  std::uint64_t b;
  std::memcpy(&b, &t, sizeof b);
  return b;
}

/// Where events run and how messages travel: the engine fabric maps each
/// component to its own LP; the flat fabric maps everything onto one
/// Scheduler, where a "message" is a plain schedule_call — same event count,
/// one global queue. Component index: 0..nodes-1 = nodes, nodes = server.
struct Fabric {
  virtual ~Fabric() = default;
  virtual Scheduler& sched(int comp) = 0;
  virtual void send(int src, int dst, SimTime t,
                    std::function<void()> fn) = 0;
};

struct EngineFabric : Fabric {
  explicit EngineFabric(const LpClusterConfig& cfg)
      : engine(cfg.kind, cfg.workers) {
    for (int n = 0; n < cfg.nodes; ++n) {
      lps.push_back(&engine.add_lp("node" + std::to_string(n)));
    }
    lps.push_back(&engine.add_lp("server"));
    // Lookahead table: the only cross-LP edges are node <-> server, both
    // lower-bounded by the message transit latency.
    const LpId server = static_cast<LpId>(cfg.nodes);
    for (int n = 0; n < cfg.nodes; ++n) {
      engine.set_lookahead(static_cast<LpId>(n), server, cfg.msg_latency);
      engine.set_lookahead(server, static_cast<LpId>(n), cfg.msg_latency);
    }
  }
  Scheduler& sched(int comp) override { return lps[comp]->sched(); }
  void send(int src, int dst, SimTime t, std::function<void()> fn) override {
    lps[src]->post(static_cast<LpId>(dst), t, std::move(fn));
  }
  Engine engine;
  std::vector<Lp*> lps;
};

struct FlatFabric : Fabric {
  Scheduler& sched(int) override { return s; }
  void send(int, int, SimTime t, std::function<void()> fn) override {
    s.schedule_call(t, std::move(fn));
  }
  Scheduler s;
};

struct Cluster {
  Cluster(const LpClusterConfig& c, Fabric& f) : cfg(c), fab(f) {
    nodes.reserve(static_cast<std::size_t>(cfg.nodes));
    for (int n = 0; n < cfg.nodes; ++n) {
      nodes.emplace_back(cfg.seed ^ (0x5bd1e995u * (std::uint64_t(n) + 1)),
                         cfg.working_set_kb);
    }
    server_ports = std::make_unique<Resource>(fab.sched(cfg.nodes),
                                              cfg.server_ports, "lockeng");
    if (cfg.trace_capacity > 0) {
      // One recorder per component — node LPs and the lock-engine LP each
      // record into their own ring. Under the parallel engine different LPs
      // drain on different workers, so a shared recorder would race; disjoint
      // rings merged after the run keep tracing race-free AND deterministic.
      recorders.reserve(static_cast<std::size_t>(cfg.nodes) + 1);
      for (int i = 0; i <= cfg.nodes; ++i) {
        recorders.emplace_back(cfg.trace_capacity);
      }
    }
  }

  obs::TraceRecorder* rec(int comp) {
    return recorders.empty() ? nullptr
                             : &recorders[static_cast<std::size_t>(comp)];
  }

  void start() {
    for (int n = 0; n < cfg.nodes; ++n) {
      for (int p = 0; p < cfg.mpl; ++p) {
        fab.sched(n).spawn(txn_worker(n));
      }
    }
  }

  struct NodeState {
    NodeState(std::uint64_t seed, int ws_kb) : rng(seed) {
      if (ws_kb > 0) {
        // Power-of-two cells so the chase can mask instead of divide; the
        // fill is a fixed mix of the index (identical across fabrics).
        std::size_t cells = std::size_t{64};
        while (cells * sizeof(std::uint64_t) < std::size_t(ws_kb) * 1024) {
          cells *= 2;
        }
        ws.resize(cells);
        for (std::size_t i = 0; i < cells; ++i) {
          ws[i] = mix(0x243f6a8885a308d3ULL, i);
        }
      }
    }
    Rng rng;
    std::vector<std::uint64_t> ws;  ///< buffer working set (may be empty)
    std::uint64_t cursor = 0;       ///< chase continuation point
    std::uint64_t txn_seq = 0;      ///< per-node transaction id sequence
    std::uint64_t commits = 0;
    std::uint64_t remote = 0;
    std::uint64_t digest = 0;
    SimTime last_commit = 0;
  };

  /// The local-request memory work: `chase_len` dependent read-modify-write
  /// touches through the node's working set. Each load feeds the next index,
  /// so the chain is latency-bound — cache residency of the set, not
  /// bandwidth, decides its speed.
  void chase(NodeState& nd) {
    const std::uint64_t mask = nd.ws.size() - 1;
    std::uint64_t idx = nd.cursor & mask;
    std::uint64_t acc = nd.digest;
    for (int k = 0; k < cfg.chase_len; ++k) {
      std::uint64_t& cell = nd.ws[idx];
      acc = mix(acc, cell);
      cell ^= acc;
      idx = cell & mask;
    }
    nd.cursor = idx;
    nd.digest = acc;
  }

  /// One multiprogramming slot: closed loop of transactions, each a chain
  /// of CPU bursts followed by a local buffer access or a round trip to the
  /// lock-engine LP. Runs entirely on its node's scheduler; the server only
  /// ever sees the suspended handle.
  Task<void> txn_worker(int n) {
    NodeState& nd = nodes[static_cast<std::size_t>(n)];
    Scheduler& s = fab.sched(n);
    obs::TraceRecorder* const tr = rec(n);
    // Node 0 optionally runs longer transactions — the deterministic
    // straggler whose window-limiting drains the engine profiler attributes.
    const int requests =
        cfg.requests_per_txn + (n == 0 ? cfg.straggler_extra_requests : 0);
    while (nd.commits < cfg.txns_per_node) {
      const std::uint64_t txn_id =
          (static_cast<std::uint64_t>(n + 1) << 32) | ++nd.txn_seq;
      const SimTime txn_start = s.now();
      for (int r = 0; r < requests; ++r) {
        co_await s.delay(nd.rng.exponential(cfg.cpu_burst_mean));
        if (nd.rng.uniform() < cfg.remote_fraction) {
          ++nd.remote;
          const SimTime wait_start = s.now();
          co_await s.suspend([this, n, &s](std::coroutine_handle<> h) {
            fab.send(n, cfg.nodes, s.now() + cfg.msg_latency,
                     [this, n, h] { fab.sched(cfg.nodes).spawn(serve(n, h)); });
          });
          nd.digest = mix(nd.digest, time_bits(s.now()));  // grant time
          if (tr) {
            tr->span(obs::TraceName::kLockWait, static_cast<std::int16_t>(n),
                     txn_id, wait_start, s.now());
          }
        } else {
          co_await s.delay(cfg.local_service);
          if (!nd.ws.empty()) chase(nd);
          nd.digest = mix(nd.digest, static_cast<std::uint64_t>(r) + 1);
        }
      }
      ++nd.commits;
      nd.last_commit = s.now();
      nd.digest = mix(nd.digest, nd.commits);
      if (tr) {
        tr->span(obs::TraceName::kTxn, static_cast<std::int16_t>(n), txn_id,
                 txn_start, s.now());
      }
    }
  }

  /// Server side of one request: FIFO port, fixed service, reply message
  /// that resumes the waiting transaction back on its node.
  Task<void> serve(int n, std::coroutine_handle<> h) {
    Scheduler& ss = fab.sched(cfg.nodes);
    const SimTime arrival = ss.now();
    co_await server_ports->use(cfg.server_service);
    server_digest = mix(server_digest, (std::uint64_t(n) << 32) | ++server_ops);
    server_digest = mix(server_digest, time_bits(ss.now()));
    if (obs::TraceRecorder* const tr = rec(cfg.nodes)) {
      // Port wait + service on the lock-engine LP, id = (node, op seq).
      tr->span(obs::TraceName::kGemAccess,
               static_cast<std::int16_t>(cfg.nodes),
               (std::uint64_t(n + 1) << 32) | server_ops, arrival, ss.now());
    }
    fab.send(cfg.nodes, n, ss.now() + cfg.msg_latency, [h] { h.resume(); });
  }

  LpClusterResult collect() const {
    LpClusterResult r;
    std::uint64_t digest = server_digest;
    for (const NodeState& nd : nodes) {
      r.commits += nd.commits;
      r.remote_requests += nd.remote;
      r.makespan = std::max(r.makespan, nd.last_commit);
      digest = mix(digest, nd.digest);
    }
    r.checksum = digest;
    // Deterministic trace merge: append ring snapshots in component order,
    // then stable-sort by (time, component) — per-recorder order survives
    // ties, so the merged trace is identical at any worker count.
    for (const obs::TraceRecorder& tr : recorders) {
      const std::vector<obs::TraceEvent> ev = tr.snapshot();
      r.trace.insert(r.trace.end(), ev.begin(), ev.end());
      r.trace_dropped += tr.dropped();
    }
    std::stable_sort(r.trace.begin(), r.trace.end(),
                     [](const obs::TraceEvent& a, const obs::TraceEvent& b) {
                       return a.t != b.t ? a.t < b.t : a.node < b.node;
                     });
    return r;
  }

  const LpClusterConfig& cfg;
  Fabric& fab;
  std::vector<NodeState> nodes;
  std::unique_ptr<Resource> server_ports;
  std::vector<obs::TraceRecorder> recorders;  ///< per component; maybe empty
  std::uint64_t server_digest = 0;
  std::uint64_t server_ops = 0;
};

/// Generous horizon: the closed workload drains long before this; the run
/// loop exits as soon as every queue is empty.
constexpr SimTime kDrainHorizon = 1e9;

}  // namespace

LpClusterResult run_lp_cluster(const LpClusterConfig& cfg) {
  EngineFabric fab(cfg);
  if (cfg.profiler) fab.engine.set_profiler(cfg.profiler);
  Cluster cluster(cfg, fab);
  cluster.start();
  fab.engine.run_until(kDrainHorizon);
  LpClusterResult r = cluster.collect();
  const EngineStats st = fab.engine.stats();
  r.events = st.events;
  r.messages = st.messages;
  r.windows = st.windows;
  r.degenerate_windows = st.degenerate_windows;
  r.max_queue_depth = st.max_queue_depth;
  return r;
}

LpClusterResult run_lp_cluster_single_queue(const LpClusterConfig& cfg) {
  FlatFabric fab;
  Cluster cluster(cfg, fab);
  cluster.start();
  fab.s.run_until(kDrainHorizon);
  LpClusterResult r = cluster.collect();
  r.events = fab.s.events_processed();
  r.max_queue_depth = fab.s.max_queued();
  return r;
}

}  // namespace gemsd::sim
