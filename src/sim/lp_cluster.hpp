#pragma once

#include <cstdint>
#include <vector>

#include "obs/trace.hpp"
#include "sim/engine_kind.hpp"
#include "sim/time.hpp"

namespace gemsd::obs {
class EngProfiler;
}

namespace gemsd::sim {

/// Configuration of the LP-native cluster model (lp_cluster.cpp): N node
/// LPs running closed multiprogrammed transaction streams against one
/// shared lock-engine LP, all cross-LP traffic lower-bounded by the message
/// transit latency. This is the engine's reference workload — the shape of
/// the paper's loosely coupled cluster, reduced to what the kernel sees:
/// dense local event streams per node, sparse lower-bounded messages
/// between them.
struct LpClusterConfig {
  int nodes = 4;
  int mpl = 32;                    ///< concurrent transactions per node
  std::uint64_t txns_per_node = 500;  ///< commit target per node
  int requests_per_txn = 8;
  double remote_fraction = 0.25;   ///< requests that consult the lock engine
  SimTime cpu_burst_mean = usec(20);   ///< exponential burst between requests
  SimTime local_service = usec(15);    ///< local buffer/latch path
  SimTime msg_latency = usec(200);     ///< cross-LP transit lower bound
  SimTime server_service = usec(2);    ///< lock-engine service per request
  int server_ports = 8;
  /// Per-node buffer working set (0 = none). Every local request walks a
  /// deterministic read-write pointer chase of `chase_len` dependent steps
  /// through the node's set — the memory footprint a real node's buffer and
  /// lock state put behind each event. This is what makes the execution
  /// order performance-relevant: the safe-window engine drains one LP at a
  /// time, keeping a single node's set cache-resident across a whole window,
  /// while a flat global queue interleaves all nodes event-by-event and
  /// touches the union of their sets. Results (checksum included) are
  /// unaffected by that order either way.
  int working_set_kb = 0;
  int chase_len = 16;              ///< dependent touches per local request
  std::uint64_t seed = 42;
  EngineKind kind = EngineKind::Sequential;
  int workers = 0;                 ///< parallel workers (0 = hw concurrency)
  /// Extra requests per transaction on node 0 only: turns node 0 into a
  /// deterministic straggler LP — the worked example for the engine
  /// profiler's stall attribution (docs/observability.md).
  int straggler_extra_requests = 0;
  /// Per-LP trace ring capacity (0 = tracing off). Each component — every
  /// node LP and the lock-engine LP — records into its OWN ring (a shared
  /// recorder would race under the parallel engine); the rings are merged
  /// deterministically into LpClusterResult::trace after the run. Spans:
  /// kTxn per transaction, kLockWait per remote round trip (node side),
  /// kGemAccess per request (server side). Recording never touches
  /// simulation state, so the checksum is unaffected.
  std::size_t trace_capacity = 0;
  /// Optional engine parallelism profiler (obs/engprof.hpp) attached to the
  /// run's engine. Wall-clock only — does not perturb results.
  obs::EngProfiler* profiler = nullptr;
};

struct LpClusterResult {
  std::uint64_t commits = 0;
  std::uint64_t remote_requests = 0;
  std::uint64_t events = 0;        ///< kernel events processed
  std::uint64_t messages = 0;      ///< cross-LP messages routed
  std::uint64_t windows = 0;
  std::uint64_t degenerate_windows = 0;
  std::size_t max_queue_depth = 0;
  /// Order-sensitive digest of every request completion (per-LP order plus
  /// grant times). Identical across engine kinds and worker counts — the
  /// determinism tests' one-number witness.
  std::uint64_t checksum = 0;
  SimTime makespan = 0;            ///< last commit time
  /// Merged per-LP trace spans (empty unless cfg.trace_capacity > 0),
  /// ordered by (time, component) with per-recorder order preserved on
  /// ties — identical across engine kinds and worker counts.
  std::vector<obs::TraceEvent> trace;
  std::uint64_t trace_dropped = 0;  ///< ring overwrites summed over all LPs
};

/// Run the cluster on the safe-window engine. Deterministic: the result —
/// checksum included — is identical for both engine kinds and any worker
/// count.
LpClusterResult run_lp_cluster(const LpClusterConfig& cfg);

/// The same workload flattened onto one Scheduler (the pre-engine way to
/// simulate a cluster): the single-global-queue baseline the engine benches
/// compare against at matching event counts. cfg.kind/workers are ignored.
LpClusterResult run_lp_cluster_single_queue(const LpClusterConfig& cfg);

}  // namespace gemsd::sim
