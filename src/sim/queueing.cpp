#include "sim/queueing.hpp"

#include <cmath>
#include <stdexcept>

namespace gemsd::sim {

double erlang_c(int k, double a) {
  if (k <= 0) throw std::invalid_argument("erlang_c: k must be positive");
  if (a < 0.0 || a >= k) {
    throw std::invalid_argument("erlang_c: offered load must be in [0, k)");
  }
  // Iterative Erlang-B, then convert to Erlang-C (numerically stable).
  double b = 1.0;
  for (int i = 1; i <= k; ++i) {
    b = a * b / (static_cast<double>(i) + a * b);
  }
  const double rho = a / static_cast<double>(k);
  return b / (1.0 - rho + rho * b);
}

double mmk_wait(double lambda, double mean_service, int k) {
  if (lambda <= 0.0) return 0.0;
  const double a = lambda * mean_service;
  const double rho = a / static_cast<double>(k);
  if (rho >= 1.0) {
    throw std::invalid_argument("mmk_wait: unstable (rho >= 1)");
  }
  return erlang_c(k, a) * mean_service / (static_cast<double>(k) * (1.0 - rho));
}

double mmk_response(double lambda, double mean_service, int k) {
  return mmk_wait(lambda, mean_service, k) + mean_service;
}

double mmk_number_in_system(double lambda, double mean_service, int k) {
  return lambda * mmk_response(lambda, mean_service, k);
}

double mm1_response(double lambda, double mean_service) {
  return mmk_response(lambda, mean_service, 1);
}

double mg1_wait(double lambda, double mean_service, double scv) {
  const double rho = lambda * mean_service;
  if (rho >= 1.0) {
    throw std::invalid_argument("mg1_wait: unstable (rho >= 1)");
  }
  return rho * mean_service * (1.0 + scv) / (2.0 * (1.0 - rho));
}

}  // namespace gemsd::sim
