#pragma once

namespace gemsd::sim {

/// Closed-form queueing formulas used to cross-validate the simulator: the
/// DES must agree with M/M/k theory on single stations, and the analytic
/// debit-credit model (core/analytic.hpp) builds response-time predictions
/// from these.

/// Erlang-C: probability that an arrival to an M/M/k queue must wait.
/// `offered` is the offered load a = lambda/mu (in Erlangs); requires
/// a < k for stability.
double erlang_c(int k, double offered);

/// Mean waiting time (excluding service) in an M/M/k queue.
double mmk_wait(double lambda, double mean_service, int k);

/// Mean response time (wait + service) in an M/M/k queue.
double mmk_response(double lambda, double mean_service, int k);

/// Mean number in system (M/M/k, Little's law applied to mmk_response).
double mmk_number_in_system(double lambda, double mean_service, int k);

/// M/M/1 mean response time.
double mm1_response(double lambda, double mean_service);

/// M/G/1 mean waiting time (Pollaczek–Khinchine) given the squared
/// coefficient of variation of service times (scv = Var/mean^2; 1 for
/// exponential, 0 for deterministic).
double mg1_wait(double lambda, double mean_service, double scv);

}  // namespace gemsd::sim
