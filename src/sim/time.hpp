#pragma once

namespace gemsd::sim {

/// Simulated time, in seconds. Double precision gives sub-nanosecond
/// resolution over the simulation horizons used here (minutes).
using SimTime = double;

/// Convenience literal-style helpers (all return seconds).
constexpr SimTime usec(double x) { return x * 1e-6; }
constexpr SimTime msec(double x) { return x * 1e-3; }
constexpr SimTime sec(double x) { return x; }

}  // namespace gemsd::sim
