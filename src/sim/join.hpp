#pragma once

#include <cassert>
#include <coroutine>

#include "sim/scheduler.hpp"
#include "sim/task.hpp"

namespace gemsd::sim {

/// Fork/join for simulation processes: spawn several child activities that
/// run concurrently (parallel force-writes at commit, batched release
/// messages, ...) and await their collective completion.
class Join {
 public:
  explicit Join(Scheduler& sched) : sched_(sched) {}
  Join(const Join&) = delete;
  Join& operator=(const Join&) = delete;

  /// Launch a child; it starts at the current time.
  void spawn(Task<void> t) {
    ++pending_;
    sched_.spawn(wrap(std::move(t)));
  }

  /// Awaitable: resumes when every spawned child has finished (immediately
  /// if none are pending).
  auto wait_all() {
    struct Awaiter {
      Join& j;
      bool await_ready() const noexcept { return j.pending_ == 0; }
      void await_suspend(std::coroutine_handle<> h) {
        assert(!j.waiter_);
        j.waiter_ = h;
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this};
  }

  int pending() const { return pending_; }

 private:
  Task<void> wrap(Task<void> inner) {
    co_await std::move(inner);
    if (--pending_ == 0 && waiter_) {
      auto h = waiter_;
      waiter_ = {};
      sched_.schedule(sched_.now(), h);
    }
  }

  Scheduler& sched_;
  int pending_ = 0;
  std::coroutine_handle<> waiter_{};
};

}  // namespace gemsd::sim
