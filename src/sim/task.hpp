#pragma once

#include <coroutine>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <utility>

namespace gemsd::sim {

class Scheduler;

namespace detail {

/// Shared part of every task promise: the continuation to resume when the
/// coroutine finishes, or (for root processes) the scheduler that reaps the
/// finished frame.
class PromiseBase {
 public:
  std::coroutine_handle<> continuation;
  Scheduler* reaper = nullptr;  // set only on root (spawned) tasks

  std::suspend_always initial_suspend() noexcept { return {}; }

  struct FinalAwaiter {
    bool await_ready() noexcept { return false; }
    template <typename Promise>
    std::coroutine_handle<> await_suspend(
        std::coroutine_handle<Promise> h) noexcept;
    void await_resume() noexcept {}
  };
  FinalAwaiter final_suspend() noexcept { return {}; }

  /// Simulation model code must not leak exceptions across scheduling
  /// boundaries; an escaping exception is a programming error.
  [[noreturn]] void unhandled_exception() noexcept {
    std::fputs("gemsd: unhandled exception escaped a simulation task\n",
               stderr);
    std::abort();
  }
};

}  // namespace detail

/// A lazily-started coroutine returning T. `co_await` on a Task starts it and
/// suspends the awaiter until the task completes; the result is moved out.
/// The Task object owns the coroutine frame (destroyed with the Task), so a
/// frame that awaits child tasks transitively owns them — destroying a
/// suspended root frame cascades cleanly at simulation teardown.
template <typename T = void>
class [[nodiscard]] Task {
 public:
  struct promise_type : detail::PromiseBase {
    std::optional<T> value;
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    template <typename U>
    void return_value(U&& v) {
      value.emplace(std::forward<U>(v));
    }
  };
  using handle_type = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(handle_type h) : h_(h) {}
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  /// Transfer ownership of the frame (used by Scheduler::spawn).
  handle_type release() { return std::exchange(h_, {}); }

  bool valid() const { return static_cast<bool>(h_); }

  auto operator co_await() && {
    struct Awaiter {
      handle_type h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;  // start the child coroutine
      }
      T await_resume() { return std::move(*h.promise().value); }
    };
    return Awaiter{h_};
  }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  handle_type h_{};
};

template <>
class [[nodiscard]] Task<void> {
 public:
  struct promise_type : detail::PromiseBase {
    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    void return_void() {}
  };
  using handle_type = std::coroutine_handle<promise_type>;

  Task() = default;
  explicit Task(handle_type h) : h_(h) {}
  Task(Task&& o) noexcept : h_(std::exchange(o.h_, {})) {}
  Task& operator=(Task&& o) noexcept {
    if (this != &o) {
      destroy();
      h_ = std::exchange(o.h_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  handle_type release() { return std::exchange(h_, {}); }
  bool valid() const { return static_cast<bool>(h_); }

  auto operator co_await() && {
    struct Awaiter {
      handle_type h;
      bool await_ready() const noexcept { return false; }
      std::coroutine_handle<> await_suspend(
          std::coroutine_handle<> cont) noexcept {
        h.promise().continuation = cont;
        return h;
      }
      void await_resume() noexcept {}
    };
    return Awaiter{h_};
  }

 private:
  void destroy() {
    if (h_) {
      h_.destroy();
      h_ = {};
    }
  }
  handle_type h_{};
};

}  // namespace gemsd::sim
