#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace gemsd::sim {

namespace {
constexpr SimTime kInf = std::numeric_limits<SimTime>::infinity();
}

void Lp::post(LpId dst, SimTime t, std::function<void()> fn) {
  const SimTime la = engine_->edge_lookahead(id_, dst);
  if (!(t >= sched_.now() + la)) {
    throw std::logic_error(
        "Lp::post: " + name_ + " -> lp " + std::to_string(dst) +
        " violates its registered lookahead (t < now + lookahead); the "
        "conservative horizon would be unsound");
  }
  outbox_.push_back(Out{dst, LpMessage{t, id_, out_seq_++, std::move(fn)}});
}

Engine::Engine(EngineKind kind, int workers) : kind_(kind) {
  if (kind_ == EngineKind::Parallel) {
    if (workers <= 0) {
      workers = static_cast<int>(std::thread::hardware_concurrency());
    }
    workers_ = std::max(1, workers);
  } else {
    workers_ = 1;
  }
  // Worker threads beyond the coordinator; the coordinator always
  // participates in draining a window, so workers_ == 1 needs no pool.
  for (int w = 1; w < workers_; ++w) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

Engine::~Engine() {
  if (!threads_.empty()) {
    {
      std::lock_guard<std::mutex> lk(mutex_);
      stop_ = true;
    }
    cv_start_.notify_all();
    for (auto& t : threads_) t.join();
  }
}

Lp& Engine::add_lp(std::string name) {
  const std::size_t n = lps_.size() + 1;
  lps_.emplace_back(new Lp(this, static_cast<LpId>(lps_.size()),
                           std::move(name)));
  // Grow the edge matrix, preserving registered entries.
  std::vector<SimTime> grown(n * n,
                             std::numeric_limits<SimTime>::quiet_NaN());
  for (std::size_t s = 0; s + 1 < n; ++s) {
    for (std::size_t d = 0; d + 1 < n; ++d) {
      grown[s * n + d] = lookahead_[s * (n - 1) + d];
    }
  }
  lookahead_ = std::move(grown);
  min_lookahead_cache_ = -1.0;
  return *lps_.back();
}

void Engine::set_lookahead(LpId src, LpId dst, SimTime la) {
  const auto n = lps_.size();
  if (src < 0 || dst < 0 || static_cast<std::size_t>(src) >= n ||
      static_cast<std::size_t>(dst) >= n) {
    throw std::out_of_range("Engine::set_lookahead: no such LP");
  }
  if (!(la >= 0.0)) {
    throw std::invalid_argument("Engine::set_lookahead: negative lookahead");
  }
  lookahead_[static_cast<std::size_t>(src) * n +
             static_cast<std::size_t>(dst)] = la;
  min_lookahead_cache_ = -1.0;
}

SimTime Engine::edge_lookahead(LpId src, LpId dst) const {
  const auto n = lps_.size();
  if (dst < 0 || static_cast<std::size_t>(dst) >= n) {
    throw std::out_of_range("Lp::post: no such destination LP");
  }
  const SimTime la = lookahead_[static_cast<std::size_t>(src) * n +
                                static_cast<std::size_t>(dst)];
  if (std::isnan(la)) {
    throw std::logic_error(
        "Lp::post: edge " + std::to_string(src) + " -> " +
        std::to_string(dst) +
        " has no registered lookahead (Engine::set_lookahead)");
  }
  return la;
}

SimTime Engine::min_lookahead() const {
  if (min_lookahead_cache_ >= 0.0) return min_lookahead_cache_;
  SimTime m = kInf;
  for (const SimTime la : lookahead_) {
    if (!std::isnan(la)) m = std::min(m, la);
  }
  min_lookahead_cache_ = m;
  return m;
}

void Engine::route_outboxes() {
  staged_.clear();
  for (auto& lp : lps_) {
    if (lp->outbox_.empty()) continue;
    staged_.insert(staged_.end(),
                   std::make_move_iterator(lp->outbox_.begin()),
                   std::make_move_iterator(lp->outbox_.end()));
    lp->outbox_.clear();
  }
  if (staged_.empty()) return;
  // (t, src, seq) is a strict total order (seq is per-source), so the
  // delivery order — and each destination's schedule_call FIFO tie-break —
  // is independent of which worker filled which outbox when.
  std::sort(staged_.begin(), staged_.end(),
            [](const Lp::Out& a, const Lp::Out& b) {
              if (a.msg.t != b.msg.t) return a.msg.t < b.msg.t;
              if (a.msg.src != b.msg.src) return a.msg.src < b.msg.src;
              return a.msg.seq < b.msg.seq;
            });
  messages_ += staged_.size();
  for (auto& s : staged_) {
    lps_[static_cast<std::size_t>(s.dst)]->sched_.schedule_call(
        s.msg.t, std::move(s.msg.fn));
  }
  staged_.clear();
}

void Engine::drain_ready() {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= ready_.size()) return;
    Scheduler& s = ready_[i]->sched_;
    if (window_inclusive_) {
      s.run_until(window_bound_);
    } else {
      s.run_before(window_bound_);
    }
  }
}

void Engine::worker_loop() {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mutex_);
      cv_start_.wait(lk, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
    }
    try {
      drain_ready();
    } catch (...) {
      std::lock_guard<std::mutex> lk(mutex_);
      if (!worker_error_) worker_error_ = std::current_exception();
    }
    std::lock_guard<std::mutex> lk(mutex_);
    if (--active_ == 0) cv_done_.notify_one();
  }
}

void Engine::run_ready(SimTime bound, bool inclusive) {
  ready_.clear();
  for (auto& lp : lps_) {
    const SimTime nt = lp->sched_.next_time();
    if (inclusive ? nt <= bound : nt < bound) ready_.push_back(lp.get());
  }
  if (ready_.empty()) return;
  window_bound_ = bound;
  window_inclusive_ = inclusive;
  next_.store(0, std::memory_order_relaxed);
  if (threads_.empty() || ready_.size() == 1) {
    drain_ready();
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mutex_);
    ++epoch_;
    active_ = static_cast<int>(threads_.size());
  }
  cv_start_.notify_all();
  try {
    drain_ready();
  } catch (...) {
    std::lock_guard<std::mutex> lk(mutex_);
    if (!worker_error_) worker_error_ = std::current_exception();
  }
  std::unique_lock<std::mutex> lk(mutex_);
  cv_done_.wait(lk, [&] { return active_ == 0; });
  if (worker_error_) {
    std::exception_ptr e = worker_error_;
    worker_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

std::uint64_t Engine::total_events() const {
  std::uint64_t n = 0;
  for (const auto& lp : lps_) n += lp->sched_.events_processed();
  return n;
}

std::uint64_t Engine::run_until(SimTime end) {
  const std::uint64_t before = total_events();
  for (;;) {
    route_outboxes();
    SimTime t_min = kInf;
    for (const auto& lp : lps_) {
      t_min = std::min(t_min, lp->sched_.next_time());
    }
    if (t_min > end) break;  // also: every queue empty (t_min == inf)
    ++windows_;
    const SimTime horizon = t_min + min_lookahead();
    if (horizon > end) {
      // Everything up to `end` is already safe: one final inclusive window
      // (messages produced here arrive at >= horizon > end). With a single
      // LP — or no registered edges at all — this is the only window, and
      // the engine adds nothing to plain Scheduler::run_until.
      run_ready(end, true);
    } else if (horizon <= t_min) {
      // A zero-lookahead edge (or one below the floating-point resolution
      // of t_min) leaves no safe window. Degenerate to one serialized step:
      // the globally minimal (next event time, LpId) process runs events at
      // exactly t_min; everyone else waits for the barrier.
      ++degenerate_windows_;
      Lp* pick = nullptr;
      SimTime best = kInf;
      for (const auto& lp : lps_) {
        const SimTime nt = lp->sched_.next_time();
        if (nt < best) {
          best = nt;
          pick = lp.get();
        }
      }
      pick->sched_.run_until(best);
    } else {
      run_ready(horizon, false);
    }
  }
  // Advance every LP clock to end (no events remain at or below it).
  for (auto& lp : lps_) lp->sched_.run_until(end);
  return total_events() - before;
}

EngineStats Engine::stats() const {
  EngineStats s;
  s.windows = windows_;
  s.degenerate_windows = degenerate_windows_;
  s.messages = messages_;
  for (const auto& lp : lps_) {
    s.lp_events.push_back(lp->sched_.events_processed());
    s.events += lp->sched_.events_processed();
    s.max_queue_depth = std::max(s.max_queue_depth, lp->sched_.max_queued());
  }
  return s;
}

}  // namespace gemsd::sim
