#include "sim/engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/engprof.hpp"

namespace gemsd::sim {

namespace {
constexpr SimTime kInf = std::numeric_limits<SimTime>::infinity();
}

void Lp::post(LpId dst, SimTime t, std::function<void()> fn) {
  const SimTime la = engine_->edge_lookahead(id_, dst);
  if (!(t >= sched_.now() + la)) {
    throw std::logic_error(
        "Lp::post: " + name_ + " -> lp " + std::to_string(dst) +
        " violates its registered lookahead (t < now + lookahead); the "
        "conservative horizon would be unsound");
  }
  outbox_.push_back(Out{dst, LpMessage{t, id_, out_seq_++, std::move(fn)}});
}

Engine::Engine(EngineKind kind, int workers) : kind_(kind) {
  if (kind_ == EngineKind::Parallel) {
    if (workers <= 0) {
      workers = static_cast<int>(std::thread::hardware_concurrency());
    }
    workers_ = std::max(1, workers);
  } else {
    workers_ = 1;
  }
  // Worker threads beyond the coordinator; the coordinator always
  // participates in draining a window, so workers_ == 1 needs no pool.
  for (int w = 1; w < workers_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

Engine::~Engine() {
  if (!threads_.empty()) {
    {
      std::lock_guard<std::mutex> lk(mutex_);
      stop_ = true;
    }
    cv_start_.notify_all();
    for (auto& t : threads_) t.join();
  }
}

Lp& Engine::add_lp(std::string name) {
  const std::size_t n = lps_.size() + 1;
  lps_.emplace_back(new Lp(this, static_cast<LpId>(lps_.size()),
                           std::move(name)));
  // Grow the edge matrix, preserving registered entries.
  std::vector<SimTime> grown(n * n,
                             std::numeric_limits<SimTime>::quiet_NaN());
  for (std::size_t s = 0; s + 1 < n; ++s) {
    for (std::size_t d = 0; d + 1 < n; ++d) {
      grown[s * n + d] = lookahead_[s * (n - 1) + d];
    }
  }
  lookahead_ = std::move(grown);
  min_edge_valid_ = false;
  return *lps_.back();
}

void Engine::set_lookahead(LpId src, LpId dst, SimTime la) {
  const auto n = lps_.size();
  if (src < 0 || dst < 0 || static_cast<std::size_t>(src) >= n ||
      static_cast<std::size_t>(dst) >= n) {
    throw std::out_of_range("Engine::set_lookahead: no such LP");
  }
  if (!(la >= 0.0)) {
    throw std::invalid_argument("Engine::set_lookahead: negative lookahead");
  }
  lookahead_[static_cast<std::size_t>(src) * n +
             static_cast<std::size_t>(dst)] = la;
  min_edge_valid_ = false;
}

SimTime Engine::edge_lookahead(LpId src, LpId dst) const {
  const auto n = lps_.size();
  if (dst < 0 || static_cast<std::size_t>(dst) >= n) {
    throw std::out_of_range("Lp::post: no such destination LP");
  }
  const SimTime la = lookahead_[static_cast<std::size_t>(src) * n +
                                static_cast<std::size_t>(dst)];
  if (std::isnan(la)) {
    throw std::logic_error(
        "Lp::post: edge " + std::to_string(src) + " -> " +
        std::to_string(dst) +
        " has no registered lookahead (Engine::set_lookahead)");
  }
  return la;
}

Engine::MinEdge Engine::min_edge() const {
  if (min_edge_valid_) return min_edge_cache_;
  MinEdge m;
  m.la = kInf;
  const auto n = lps_.size();
  // Row-major scan with strict < keeps the argmin deterministic: among
  // equally tight edges the smallest (src, dst) wins and is the one the
  // profiler reports as limiting.
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t d = 0; d < n; ++d) {
      const SimTime la = lookahead_[s * n + d];
      if (!std::isnan(la) && la < m.la) {
        m.la = la;
        m.src = static_cast<LpId>(s);
        m.dst = static_cast<LpId>(d);
      }
    }
  }
  min_edge_cache_ = m;
  min_edge_valid_ = true;
  return m;
}

void Engine::route_outboxes() {
  staged_.clear();
  for (auto& lp : lps_) {
    if (lp->outbox_.empty()) continue;
    staged_.insert(staged_.end(),
                   std::make_move_iterator(lp->outbox_.begin()),
                   std::make_move_iterator(lp->outbox_.end()));
    lp->outbox_.clear();
  }
  if (staged_.empty()) return;
  // (t, src, seq) is a strict total order (seq is per-source), so the
  // delivery order — and each destination's schedule_call FIFO tie-break —
  // is independent of which worker filled which outbox when.
  std::sort(staged_.begin(), staged_.end(),
            [](const Lp::Out& a, const Lp::Out& b) {
              if (a.msg.t != b.msg.t) return a.msg.t < b.msg.t;
              if (a.msg.src != b.msg.src) return a.msg.src < b.msg.src;
              return a.msg.seq < b.msg.seq;
            });
  messages_ += staged_.size();
  for (auto& s : staged_) {
    lps_[static_cast<std::size_t>(s.dst)]->sched_.schedule_call(
        s.msg.t, std::move(s.msg.fn));
  }
  staged_.clear();
}

void Engine::drain_ready(int worker) {
  // Snapshot prof_ once: set_profiler happens between runs, never mid-window.
  obs::EngProfiler* const prof = prof_;
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= ready_.size()) return;
    Lp* const lp = ready_[i];
    Scheduler& s = lp->sched_;
    const double t0 = prof ? prof->now_s() : 0.0;
    const std::uint64_t e0 = prof ? s.events_processed() : 0;
    if (window_inclusive_) {
      s.run_until(window_bound_);
    } else {
      s.run_before(window_bound_);
    }
    if (prof) {
      // Each LP is claimed by exactly one worker per window and the slot is
      // preallocated per LP, so this write is race-free; the completion
      // barrier orders it before the coordinator's window_end.
      prof->lp_ran(static_cast<int>(lp->id()), worker, t0, prof->now_s(),
                   s.events_processed() - e0);
    }
  }
}

void Engine::worker_loop(int worker) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(mutex_);
      cv_start_.wait(lk, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
    }
    try {
      drain_ready(worker);
    } catch (...) {
      std::lock_guard<std::mutex> lk(mutex_);
      if (!worker_error_) worker_error_ = std::current_exception();
    }
    std::lock_guard<std::mutex> lk(mutex_);
    if (--active_ == 0) cv_done_.notify_one();
  }
}

void Engine::run_ready(SimTime bound, bool inclusive) {
  ready_.clear();
  for (auto& lp : lps_) {
    const SimTime nt = lp->sched_.next_time();
    if (inclusive ? nt <= bound : nt < bound) ready_.push_back(lp.get());
  }
  if (ready_.empty()) return;
  window_bound_ = bound;
  window_inclusive_ = inclusive;
  next_.store(0, std::memory_order_relaxed);
  if (threads_.empty() || ready_.size() == 1) {
    drain_ready(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mutex_);
    ++epoch_;
    active_ = static_cast<int>(threads_.size());
  }
  cv_start_.notify_all();
  try {
    drain_ready(0);
  } catch (...) {
    std::lock_guard<std::mutex> lk(mutex_);
    if (!worker_error_) worker_error_ = std::current_exception();
  }
  std::unique_lock<std::mutex> lk(mutex_);
  cv_done_.wait(lk, [&] { return active_ == 0; });
  if (worker_error_) {
    std::exception_ptr e = worker_error_;
    worker_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

std::uint64_t Engine::total_events() const {
  std::uint64_t n = 0;
  for (const auto& lp : lps_) n += lp->sched_.events_processed();
  return n;
}

std::uint64_t Engine::run_until(SimTime end) {
  const std::uint64_t before = total_events();
  obs::EngProfiler* const prof = prof_;
  if (prof) {
    std::vector<std::string> names;
    names.reserve(lps_.size());
    for (const auto& lp : lps_) names.push_back(lp->name());
    prof->attach(workers_, std::move(names));  // idempotent across calls
  }
  for (;;) {
    // Windows tile the loop: a window's wall span starts at the top of the
    // iteration (before outbox routing) so coordinator overhead is charged
    // to the window it precedes and the per-LP execute/idle/barrier classes
    // sum to the window wall span by construction.
    const double wall_top = prof ? prof->now_s() : 0.0;
    route_outboxes();
    SimTime t_min = kInf;
    for (const auto& lp : lps_) {
      t_min = std::min(t_min, lp->sched_.next_time());
    }
    if (t_min > end) break;  // also: every queue empty (t_min == inf)
    ++windows_;
    const MinEdge edge = min_edge();
    const SimTime horizon = t_min + edge.la;
    if (horizon > end) {
      // Everything up to `end` is already safe: one final inclusive window
      // (messages produced here arrive at >= horizon > end). With a single
      // LP — or no registered edges at all — this is the only window, and
      // the engine adds nothing to plain Scheduler::run_until.
      if (prof) {
        prof->window_begin(wall_top, t_min, end, obs::EngWindowKind::Final,
                           edge.src, edge.dst, edge.la);
      }
      run_ready(end, true);
      if (prof) prof->window_end();
    } else if (horizon <= t_min) {
      // A zero-lookahead edge (or one below the floating-point resolution
      // of t_min) leaves no safe window. Degenerate to one serialized step:
      // the globally minimal (next event time, LpId) process runs events at
      // exactly t_min; everyone else waits for the barrier.
      ++degenerate_windows_;
      Lp* pick = nullptr;
      SimTime best = kInf;
      for (const auto& lp : lps_) {
        const SimTime nt = lp->sched_.next_time();
        if (nt < best) {
          best = nt;
          pick = lp.get();
        }
      }
      if (prof) {
        prof->window_begin(wall_top, t_min, t_min,
                           obs::EngWindowKind::Degenerate, edge.src, edge.dst,
                           edge.la);
        const double t0 = prof->now_s();
        const std::uint64_t e0 = pick->sched_.events_processed();
        pick->sched_.run_until(best);
        prof->lp_ran(static_cast<int>(pick->id()), 0, t0, prof->now_s(),
                     pick->sched_.events_processed() - e0);
        prof->window_end();
      } else {
        pick->sched_.run_until(best);
      }
    } else {
      if (prof) {
        prof->window_begin(wall_top, t_min, horizon,
                           obs::EngWindowKind::Normal, edge.src, edge.dst,
                           edge.la);
      }
      run_ready(horizon, false);
      if (prof) prof->window_end();
    }
  }
  // Advance every LP clock to end (no events remain at or below it, so no
  // work happens here and the profiler does not count it).
  for (auto& lp : lps_) lp->sched_.run_until(end);
  return total_events() - before;
}

EngineStats Engine::stats() const {
  EngineStats s;
  s.windows = windows_;
  s.degenerate_windows = degenerate_windows_;
  s.messages = messages_;
  for (const auto& lp : lps_) {
    s.lp_events.push_back(lp->sched_.events_processed());
    s.events += lp->sched_.events_processed();
    s.max_queue_depth = std::max(s.max_queue_depth, lp->sched_.max_queued());
  }
  return s;
}

}  // namespace gemsd::sim
