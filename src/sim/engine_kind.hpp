#pragma once

namespace gemsd::sim {

/// Execution backend for the event kernel (see sim/engine.hpp).
///
/// Sequential runs every logical process on the calling thread in the same
/// safe-window schedule the parallel backend uses, so the two kinds produce
/// identical results by construction; Parallel adds a worker pool that
/// executes independent logical processes concurrently inside each window.
/// The kind is pure execution policy: it never enters config_json,
/// config_hash, or exported specs.
enum class EngineKind {
  Sequential,
  Parallel,
};

}  // namespace gemsd::sim
