#include "sim/resource.hpp"

#include <cassert>
#include <utility>

namespace gemsd::sim {

Resource::Resource(Scheduler& sched, int capacity, std::string name)
    : sched_(sched), cap_(capacity), name_(std::move(name)) {
  assert(capacity > 0);
}

void Resource::grant_now() {
  ++busy_;
  busy_tw_.set(sched_.now(), static_cast<double>(busy_));
}

void Resource::release() {
  assert(busy_ > 0);
  ++completions_;
  if (!q_.empty()) {
    // Hand the slot directly to the oldest waiter; busy count is unchanged.
    auto h = q_.front();
    q_.pop_front();
    qlen_tw_.set(sched_.now(), static_cast<double>(q_.size()));
    sched_.schedule(sched_.now(), h);
  } else {
    --busy_;
    busy_tw_.set(sched_.now(), static_cast<double>(busy_));
  }
}

Task<double> Resource::use(SimTime service) {
  const double wait = co_await acquire();
  co_await sched_.delay(service);
  release();
  co_return wait;
}

void Resource::reset_stats() {
  busy_tw_.reset(sched_.now());
  qlen_tw_.reset(sched_.now());
  wait_ = MeanStat{};
  completions_ = 0;
}

}  // namespace gemsd::sim
