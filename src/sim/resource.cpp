#include "sim/resource.hpp"

#include <cassert>
#include <utility>

namespace gemsd::sim {

Resource::Resource(Scheduler& sched, int capacity, std::string name)
    : sched_(sched), cap_(capacity), name_(std::move(name)) {
  assert(capacity > 0);
}

void Resource::grant_now() {
  ++busy_;
  busy_tw_.set(sched_.now(), static_cast<double>(busy_));
}

void Resource::release() {
  assert(busy_ > 0);
  ++completions_;
  if (!q_.empty()) {
    // Hand the slot directly to the oldest waiter; busy count is unchanged.
    auto h = q_.front().h;
    q_.pop_front();
    qlen_tw_.set(sched_.now(), static_cast<double>(q_.size()));
    sched_.schedule(sched_.now(), h);
  } else {
    --busy_;
    busy_tw_.set(sched_.now(), static_cast<double>(busy_));
  }
}

Task<double> Resource::use(SimTime service) {
  const double wait = co_await acquire();
  co_await sched_.delay(service);
  release();
  co_return wait;
}

void Resource::reset_stats() {
  const SimTime now = sched_.now();
  busy_tw_.reset(now);
  qlen_tw_.reset(now);
  wait_ = MeanStat{};
  arrivals_ = 0;
  completions_ = 0;
  waited_s_ = 0.0;
  queue_max_ = q_.size();
  horizon_start_ = now;
  in_system_at_reset_ = in_system();
}

}  // namespace gemsd::sim
