#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/task.hpp"
#include "sim/time.hpp"

namespace gemsd::sim {

/// Discrete-event scheduler. All model activity runs as coroutine processes
/// resumed from the central event queue; every cross-process wakeup goes
/// through schedule(), never by resuming a handle inline. That single rule
/// makes the simulation reentrancy-free and teardown safe.
class Scheduler {
 public:
  Scheduler() = default;
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  SimTime now() const { return now_; }

  /// Resume `h` at absolute time `t` (>= now).
  void schedule(SimTime t, std::coroutine_handle<> h);
  /// Run `fn` at absolute time `t` (timers, arrival generators hooks).
  void schedule_call(SimTime t, std::function<void()> fn);

  /// Start a root process. The scheduler owns the frame; it is destroyed
  /// when the process finishes or when the scheduler is destroyed.
  void spawn(Task<void> t);

  /// Process events with timestamp <= end; then advance now to end.
  /// Returns the number of events processed.
  std::uint64_t run_until(SimTime end);
  /// Process all remaining events. Returns the number processed.
  std::uint64_t run_all();

  bool empty() const { return pq_.empty(); }
  std::uint64_t events_processed() const { return processed_; }
  std::size_t live_processes() const { return roots_.size(); }

  /// Awaitable: suspend the calling process for `d` simulated time.
  auto delay(SimTime d) {
    struct Awaiter {
      Scheduler& s;
      SimTime d;
      bool await_ready() const noexcept { return d <= 0.0; }
      void await_suspend(std::coroutine_handle<> h) {
        s.schedule(s.now_ + d, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  /// Awaitable: suspend the calling process and hand its handle to `fn`,
  /// which must arrange resumption later via schedule(). Used by lock
  /// managers and futures to park processes on their own wait queues.
  template <typename Fn>
  auto suspend(Fn fn) {
    struct Awaiter {
      Fn fn;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { fn(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{std::move(fn)};
  }

  /// Internal: called from a finished root task's final suspend.
  void reap(std::coroutine_handle<> h);

 private:
  struct Ev {
    SimTime t;
    std::uint64_t seq;
    std::coroutine_handle<> h;   // either a handle...
    std::function<void()> fn;    // ...or a callback
  };
  struct EvLater {
    bool operator()(const Ev& a, const Ev& b) const {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  void drain_dead();

  std::priority_queue<Ev, std::vector<Ev>, EvLater> pq_;
  SimTime now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
  std::unordered_set<void*> roots_;
  std::vector<std::coroutine_handle<>> dead_;
};

namespace detail {

template <typename Promise>
std::coroutine_handle<> PromiseBase::FinalAwaiter::await_suspend(
    std::coroutine_handle<Promise> h) noexcept {
  auto& pb = h.promise();
  if (pb.continuation) return pb.continuation;
  if (pb.reaper != nullptr) pb.reaper->reap(h);
  return std::noop_coroutine();
}

}  // namespace detail

}  // namespace gemsd::sim
