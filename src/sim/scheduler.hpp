#pragma once

#include <coroutine>
#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "sim/task.hpp"
#include "sim/time.hpp"

namespace gemsd::sim {

/// Discrete-event scheduler. All model activity runs as coroutine processes
/// resumed from the central event queue; every cross-process wakeup goes
/// through schedule(), never by resuming a handle inline. That single rule
/// makes the simulation reentrancy-free and teardown safe.
///
/// The event lane is allocation-free in the common case: an event is a
/// trivially copyable 24-byte heap entry tagged as either a coroutine resume
/// (the payload is the handle address) or a callback (the payload indexes a
/// side slab of std::function slots, recycled through a free list). The heap
/// vector and the slab persist and are reused across run_until() calls, so a
/// steady-state simulation schedules millions of events without touching the
/// allocator.
///
/// A Scheduler is strictly single-threaded: no two threads may touch it at
/// the same time. Parallelism is across Scheduler instances — one per
/// simulation run (core/sweep.hpp), or one per logical process within a run
/// under the safe-window engine (sim/engine.hpp), which guarantees each LP's
/// scheduler runs on exactly one thread per window.
class Scheduler {
 public:
  Scheduler() { heap_.reserve(kInitialHeapCapacity); }
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  SimTime now() const { return now_; }

  /// Resume `h` at absolute time `t` (>= now). Fast path: no allocation.
  void schedule(SimTime t, std::coroutine_handle<> h) {
    push(Ev{t, seq_++ << 1,
            reinterpret_cast<std::uintptr_t>(h.address())});
  }
  /// Run `fn` at absolute time `t` (timers, arrival generators hooks). The
  /// callable lives in the side slab until it fires; its slot is recycled.
  void schedule_call(SimTime t, std::function<void()> fn);

  /// Start a root process. The scheduler owns the frame; it is destroyed
  /// when the process finishes or when the scheduler is destroyed.
  void spawn(Task<void> t);

  /// Process events with timestamp <= end; then advance now to end.
  /// Returns the number of events processed.
  std::uint64_t run_until(SimTime end);
  /// Process events with timestamp strictly < end; now stays at the last
  /// processed event (the clock may only move forward to times whose events
  /// have run). The safe-window engine's workhorse: events at or beyond the
  /// window horizon may still be affected by other LPs' messages.
  std::uint64_t run_before(SimTime end);
  /// Process all remaining events. Returns the number processed.
  std::uint64_t run_all();

  /// Timestamp of the next pending event, or +infinity when idle.
  SimTime next_time() const;

  bool empty() const { return heap_.empty(); }
  std::size_t queued_events() const { return heap_.size(); }
  /// Event-queue high-water mark (lifetime; not reset between runs).
  std::size_t max_queued() const { return max_queued_; }
  std::uint64_t events_processed() const { return processed_; }
  std::size_t live_processes() const { return roots_.size(); }

  /// Awaitable: suspend the calling process for `d` simulated time.
  auto delay(SimTime d) {
    struct Awaiter {
      Scheduler& s;
      SimTime d;
      bool await_ready() const noexcept { return d <= 0.0; }
      void await_suspend(std::coroutine_handle<> h) {
        s.schedule(s.now_ + d, h);
      }
      void await_resume() const noexcept {}
    };
    return Awaiter{*this, d};
  }

  /// Awaitable: suspend the calling process and hand its handle to `fn`,
  /// which must arrange resumption later via schedule(). Used by lock
  /// managers and futures to park processes on their own wait queues.
  template <typename Fn>
  auto suspend(Fn fn) {
    struct Awaiter {
      Fn fn;
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<> h) { fn(h); }
      void await_resume() const noexcept {}
    };
    return Awaiter{std::move(fn)};
  }

  /// Internal: called from a finished root task's final suspend.
  void reap(std::coroutine_handle<> h);

  /// Invoke `cb` after every `every` processed events (0 disables). The hook
  /// is observation-only plumbing for the --progress heartbeat: it costs one
  /// predictable branch on the event loop when disabled and must not mutate
  /// simulation state (it runs between events, so any mutation would change
  /// results). `cb` must outlive the scheduler or be cleared first.
  void set_progress_hook(std::function<void()> cb, std::uint64_t every) {
    progress_cb_ = std::move(cb);
    progress_every_ = progress_cb_ ? every : 0;
    progress_left_ = progress_every_;
  }

 private:
  /// Flat-heap entry. `key` is (seq << 1) | is_callback: the sequence number
  /// gives FIFO order among same-timestamp events (identical to the old
  /// priority_queue tie-break, so event order — and therefore every
  /// simulation result — is bit-identical), and the low tag bit selects the
  /// payload interpretation without widening the entry.
  struct Ev {
    SimTime t;
    std::uint64_t key;
    std::uintptr_t payload;  ///< handle address, or callback slab index
  };
  static bool before(const Ev& a, const Ev& b) {
    if (a.t != b.t) return a.t < b.t;
    return a.key < b.key;
  }

  static constexpr std::size_t kInitialHeapCapacity = 1024;

  void push(Ev ev);
  Ev pop_top();
  void dispatch(const Ev& ev);
  void drain_dead() {
    if (!dead_.empty()) drain_dead_slow();
  }
  void drain_dead_slow();

  std::vector<Ev> heap_;  ///< 4-ary min-heap ordered by (t, key)
  std::vector<std::function<void()>> slab_;  ///< callback side slab
  std::vector<std::uint32_t> free_slots_;    ///< recycled slab indices
  SimTime now_ = 0.0;
  std::uint64_t seq_ = 0;
  std::size_t max_queued_ = 0;
  std::uint64_t processed_ = 0;
  std::unordered_set<void*> roots_;
  std::vector<std::coroutine_handle<>> dead_;
  std::function<void()> progress_cb_;
  std::uint64_t progress_every_ = 0;  ///< 0 = hook disabled
  std::uint64_t progress_left_ = 0;
};

namespace detail {

template <typename Promise>
std::coroutine_handle<> PromiseBase::FinalAwaiter::await_suspend(
    std::coroutine_handle<Promise> h) noexcept {
  auto& pb = h.promise();
  if (pb.continuation) return pb.continuation;
  if (pb.reaper != nullptr) pb.reaper->reap(h);
  return std::noop_coroutine();
}

}  // namespace detail

}  // namespace gemsd::sim
