#include "sim/scheduler.hpp"

#include <cassert>

namespace gemsd::sim {

Scheduler::~Scheduler() {
  drain_dead();
  // Destroy still-suspended root processes; nested frames are owned by their
  // parents' Task locals and cascade automatically.
  for (void* p : roots_) {
    std::coroutine_handle<>::from_address(p).destroy();
  }
}

void Scheduler::schedule(SimTime t, std::coroutine_handle<> h) {
  assert(t >= now_);
  pq_.push(Ev{t, seq_++, h, {}});
}

void Scheduler::schedule_call(SimTime t, std::function<void()> fn) {
  assert(t >= now_);
  pq_.push(Ev{t, seq_++, {}, std::move(fn)});
}

void Scheduler::spawn(Task<void> t) {
  auto h = t.release();
  h.promise().reaper = this;
  roots_.insert(h.address());
  schedule(now_, h);
}

void Scheduler::reap(std::coroutine_handle<> h) {
  roots_.erase(h.address());
  dead_.push_back(h);
}

void Scheduler::drain_dead() {
  for (auto h : dead_) h.destroy();
  dead_.clear();
}

std::uint64_t Scheduler::run_until(SimTime end) {
  std::uint64_t n = 0;
  while (!pq_.empty() && pq_.top().t <= end) {
    Ev ev = pq_.top();
    pq_.pop();
    now_ = ev.t;
    if (ev.h) {
      ev.h.resume();
    } else if (ev.fn) {
      ev.fn();
    }
    drain_dead();
    ++n;
  }
  now_ = end;
  processed_ += n;
  return n;
}

std::uint64_t Scheduler::run_all() {
  std::uint64_t n = 0;
  while (!pq_.empty()) {
    Ev ev = pq_.top();
    pq_.pop();
    now_ = ev.t;
    if (ev.h) {
      ev.h.resume();
    } else if (ev.fn) {
      ev.fn();
    }
    drain_dead();
    ++n;
  }
  processed_ += n;
  return n;
}

}  // namespace gemsd::sim
