#include "sim/scheduler.hpp"

#include <cassert>
#include <limits>
#include <utility>

namespace gemsd::sim {

Scheduler::~Scheduler() {
  drain_dead();
  // Destroy still-suspended root processes; nested frames are owned by their
  // parents' Task locals and cascade automatically.
  for (void* p : roots_) {
    std::coroutine_handle<>::from_address(p).destroy();
  }
}

// The heap is 4-ary: half the tree height of a binary heap, and the four
// children of a node sit in one 32-byte span of the flat Ev array (about a
// cache line), so the extra comparisons per level are nearly free while the
// sift paths — the part deep queues pay for — shrink by 2x. Because (t, key)
// is a strict total order (key embeds the unique schedule sequence number),
// pop order is independent of heap arity: results are bit-identical to the
// binary heap this replaces. See BM_QueueDepth in bench/bench_kernel.cpp.
void Scheduler::push(Ev ev) {
  assert(ev.t >= now_);
  heap_.push_back(ev);
  if (heap_.size() > max_queued_) max_queued_ = heap_.size();
  // Sift up: hole-based (move the parent down instead of swapping).
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!before(ev, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = ev;
}

Scheduler::Ev Scheduler::pop_top() {
  const Ev top = heap_.front();
  const Ev last = heap_.back();
  heap_.pop_back();
  const std::size_t n = heap_.size();
  if (n == 0) return top;
  // Sift down: pick the smallest of up to four children per level.
  std::size_t i = 0;
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    const std::size_t end = first + 4 < n ? first + 4 : n;
    std::size_t min = first;
    for (std::size_t c = first + 1; c < end; ++c) {
      if (before(heap_[c], heap_[min])) min = c;
    }
    if (!before(heap_[min], last)) break;
    heap_[i] = heap_[min];
    i = min;
  }
  heap_[i] = last;
  return top;
}

SimTime Scheduler::next_time() const {
  return heap_.empty() ? std::numeric_limits<SimTime>::infinity()
                       : heap_.front().t;
}

void Scheduler::schedule_call(SimTime t, std::function<void()> fn) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slab_[slot] = std::move(fn);
  } else {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.push_back(std::move(fn));
  }
  push(Ev{t, (seq_++ << 1) | 1u, slot});
}

void Scheduler::dispatch(const Ev& ev) {
  if (ev.key & 1u) {
    // Move the callable out and recycle its slot before invoking: the
    // callback may itself schedule_call(), which must be free to reuse it.
    auto fn = std::move(slab_[ev.payload]);
    slab_[ev.payload] = nullptr;
    free_slots_.push_back(static_cast<std::uint32_t>(ev.payload));
    fn();
  } else {
    std::coroutine_handle<>::from_address(
        reinterpret_cast<void*>(ev.payload))
        .resume();
  }
}

void Scheduler::spawn(Task<void> t) {
  auto h = t.release();
  h.promise().reaper = this;
  roots_.insert(h.address());
  schedule(now_, h);
}

void Scheduler::reap(std::coroutine_handle<> h) {
  roots_.erase(h.address());
  dead_.push_back(h);
}

void Scheduler::drain_dead_slow() {
  for (auto h : dead_) h.destroy();
  dead_.clear();
}

std::uint64_t Scheduler::run_until(SimTime end) {
  std::uint64_t n = 0;
  while (!heap_.empty() && heap_.front().t <= end) {
    const Ev ev = pop_top();
    now_ = ev.t;
    dispatch(ev);
    drain_dead();
    ++n;
    // Kept live per event (not folded in at loop exit) so the progress
    // heartbeat sees a moving count mid-segment.
    ++processed_;
    if (progress_every_ != 0 && --progress_left_ == 0) {
      progress_left_ = progress_every_;
      progress_cb_();
    }
  }
  now_ = end;
  return n;
}

std::uint64_t Scheduler::run_before(SimTime end) {
  std::uint64_t n = 0;
  while (!heap_.empty() && heap_.front().t < end) {
    const Ev ev = pop_top();
    now_ = ev.t;
    dispatch(ev);
    drain_dead();
    ++n;
    // Kept live per event (not folded in at loop exit) so the progress
    // heartbeat sees a moving count mid-segment.
    ++processed_;
    if (progress_every_ != 0 && --progress_left_ == 0) {
      progress_left_ = progress_every_;
      progress_cb_();
    }
  }
  return n;
}

std::uint64_t Scheduler::run_all() {
  std::uint64_t n = 0;
  while (!heap_.empty()) {
    const Ev ev = pop_top();
    now_ = ev.t;
    dispatch(ev);
    drain_dead();
    ++n;
    // Kept live per event (not folded in at loop exit) so the progress
    // heartbeat sees a moving count mid-segment.
    ++processed_;
    if (progress_every_ != 0 && --progress_left_ == 0) {
      progress_left_ = progress_every_;
      progress_cb_();
    }
  }
  return n;
}

}  // namespace gemsd::sim
