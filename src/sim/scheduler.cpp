#include "sim/scheduler.hpp"

#include <cassert>
#include <utility>

namespace gemsd::sim {

Scheduler::~Scheduler() {
  drain_dead();
  // Destroy still-suspended root processes; nested frames are owned by their
  // parents' Task locals and cascade automatically.
  for (void* p : roots_) {
    std::coroutine_handle<>::from_address(p).destroy();
  }
}

void Scheduler::push(Ev ev) {
  assert(ev.t >= now_);
  heap_.push_back(ev);
  // Sift up.
  std::size_t i = heap_.size() - 1;
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before(heap_[i], heap_[parent])) break;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

Scheduler::Ev Scheduler::pop_top() {
  const Ev top = heap_.front();
  heap_.front() = heap_.back();
  heap_.pop_back();
  // Sift down.
  const std::size_t n = heap_.size();
  std::size_t i = 0;
  for (;;) {
    const std::size_t l = 2 * i + 1;
    if (l >= n) break;
    const std::size_t r = l + 1;
    std::size_t min = l;
    if (r < n && before(heap_[r], heap_[l])) min = r;
    if (!before(heap_[min], heap_[i])) break;
    std::swap(heap_[i], heap_[min]);
    i = min;
  }
  return top;
}

void Scheduler::schedule_call(SimTime t, std::function<void()> fn) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
    slab_[slot] = std::move(fn);
  } else {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.push_back(std::move(fn));
  }
  push(Ev{t, (seq_++ << 1) | 1u, slot});
}

void Scheduler::dispatch(const Ev& ev) {
  if (ev.key & 1u) {
    // Move the callable out and recycle its slot before invoking: the
    // callback may itself schedule_call(), which must be free to reuse it.
    auto fn = std::move(slab_[ev.payload]);
    slab_[ev.payload] = nullptr;
    free_slots_.push_back(static_cast<std::uint32_t>(ev.payload));
    fn();
  } else {
    std::coroutine_handle<>::from_address(
        reinterpret_cast<void*>(ev.payload))
        .resume();
  }
}

void Scheduler::spawn(Task<void> t) {
  auto h = t.release();
  h.promise().reaper = this;
  roots_.insert(h.address());
  schedule(now_, h);
}

void Scheduler::reap(std::coroutine_handle<> h) {
  roots_.erase(h.address());
  dead_.push_back(h);
}

void Scheduler::drain_dead_slow() {
  for (auto h : dead_) h.destroy();
  dead_.clear();
}

std::uint64_t Scheduler::run_until(SimTime end) {
  std::uint64_t n = 0;
  while (!heap_.empty() && heap_.front().t <= end) {
    const Ev ev = pop_top();
    now_ = ev.t;
    dispatch(ev);
    drain_dead();
    ++n;
  }
  now_ = end;
  processed_ += n;
  return n;
}

std::uint64_t Scheduler::run_all() {
  std::uint64_t n = 0;
  while (!heap_.empty()) {
    const Ev ev = pop_top();
    now_ = ev.t;
    dispatch(ev);
    drain_dead();
    ++n;
  }
  processed_ += n;
  return n;
}

}  // namespace gemsd::sim
