#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace gemsd::sim {

/// num/den with an explicit convention for an empty denominator. Every
/// zero-sample ratio in the codebase (hit ratios, per-transaction rates,
/// local-lock fractions) goes through this one helper so the edge-case
/// behaviour is defined — and unit-tested — in exactly one place.
constexpr double safe_ratio(double num, double den, double if_zero = 0.0) {
  return den > 0.0 ? num / den : if_zero;
}

/// Online mean/variance accumulator (Welford's algorithm) with min/max.
class MeanStat {
 public:
  void add(double x) {
    ++n_;
    const double d = x - mean_;
    mean_ += d / static_cast<double>(n_);
    m2_ += d * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }
  void reset() { *this = MeanStat{}; }

  std::uint64_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Time-weighted average of a piecewise-constant quantity (queue length,
/// number of busy servers, ...). Call set() whenever the value changes.
class TimeWeighted {
 public:
  void set(SimTime now, double value) {
    integral_ += value_ * (now - last_t_);
    value_ = value;
    last_t_ = now;
  }
  void add(SimTime now, double delta) { set(now, value_ + delta); }
  /// Restart the observation window at `now` keeping the current value.
  void reset(SimTime now) {
    start_t_ = now;
    last_t_ = now;
    integral_ = 0.0;
  }
  double value() const { return value_; }
  /// Time-average over [reset, now].
  double mean(SimTime now) const {
    const double horizon = now - start_t_;
    if (horizon <= 0.0) return value_;
    return (integral_ + value_ * (now - last_t_)) / horizon;
  }
  /// Integral of the value over [reset, now] (e.g. busy server-seconds).
  double integral(SimTime now) const {
    return integral_ + value_ * (now - last_t_);
  }

 private:
  double value_ = 0.0;
  SimTime start_t_ = 0.0;
  SimTime last_t_ = 0.0;
  double integral_ = 0.0;
};

/// Simple monotonically increasing event counter with reset support.
class Counter {
 public:
  void inc(std::uint64_t by = 1) { n_ += by; }
  void reset() { n_ = 0; }
  std::uint64_t value() const { return n_; }

 private:
  std::uint64_t n_ = 0;
};

/// Batch-means estimator for steady-state simulation output analysis:
/// observations are grouped into fixed-size batches; the batch means are
/// (approximately) independent, giving a defensible confidence interval for
/// the long-run mean.
class BatchMeans {
 public:
  explicit BatchMeans(std::size_t batch_size = 500) : batch_(batch_size) {}

  void add(double x) {
    sum_ += x;
    if (++in_batch_ == batch_) {
      means_.add(sum_ / static_cast<double>(batch_));
      sum_ = 0.0;
      in_batch_ = 0;
    }
  }
  void reset() {
    means_ = MeanStat{};
    sum_ = 0.0;
    in_batch_ = 0;
  }

  std::size_t batches() const { return means_.count(); }
  double mean() const { return means_.mean(); }
  /// 95% confidence half-width over the batch means (normal approximation;
  /// needs a handful of batches to be meaningful — 0 until then).
  double half_width_95() const {
    if (means_.count() < 2) return 0.0;
    return 1.96 * means_.stddev() /
           std::sqrt(static_cast<double>(means_.count()));
  }

 private:
  std::size_t batch_;
  std::size_t in_batch_ = 0;
  double sum_ = 0.0;
  MeanStat means_;
};

/// Geometric bucket layout shared by Histogram and the mergeable per-window
/// sketches of the time-series recorder (obs/timeseries.hpp): `bins` buckets
/// covering [lo, hi), storage index 0 = underflow and the last index =
/// overflow, so counts vectors of size `size()` with identical parameters
/// merge by elementwise addition.
class LogBuckets {
 public:
  LogBuckets(double lo = 1e-6, double hi = 100.0, int bins = 160)
      : lo_(lo),
        hi_(hi),
        bins_(bins),
        log_lo_(std::log(lo)),
        log_ratio_((std::log(hi) - std::log(lo)) / bins) {}

  double lo() const { return lo_; }
  double hi() const { return hi_; }
  int bins() const { return bins_; }
  /// Storage size: bins + underflow + overflow.
  int size() const { return bins_ + 2; }

  /// Storage index for an observation.
  int index(double x) const {
    if (x < lo_) return 0;
    const int b = static_cast<int>((std::log(x) - log_lo_) / log_ratio_);
    return std::min(b + 1, size() - 1);
  }
  /// Lower bound of storage index i (1-based for the regular range).
  double lower(int i) const {
    return std::exp(log_lo_ + (i - 1) * log_ratio_);
  }

 private:
  double lo_, hi_;
  int bins_;
  double log_lo_, log_ratio_;
};

/// Approximate q-quantile (0 < q < 1) of a counts vector laid out by `lb`
/// (size lb.size(), index 0 = underflow), by linear interpolation within the
/// containing bucket. Returns 0 when total == 0.
double log_buckets_quantile(const LogBuckets& lb,
                            const std::vector<std::uint64_t>& buckets,
                            std::uint64_t total, double q);

/// Log-spaced histogram for positive durations; supports approximate
/// quantiles. Bin i covers [lo * ratio^i, lo * ratio^(i+1)).
class Histogram {
 public:
  /// Covers [lo, hi) with `bins` geometric buckets (plus under/overflow).
  Histogram(double lo = 1e-6, double hi = 100.0, int bins = 160);

  void add(double x);
  void reset();
  std::uint64_t count() const { return total_; }
  /// Approximate q-quantile (0 < q < 1), by linear interpolation within the
  /// containing bucket. Returns 0 when empty.
  double quantile(double q) const;

 private:
  LogBuckets layout_;
  std::vector<std::uint64_t> buckets_;  // [0]=underflow, [last]=overflow
  std::uint64_t total_ = 0;
};

}  // namespace gemsd::sim
