#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace gemsd::sim {

/// Deterministic, seedable random source used by every stochastic model
/// component. One Rng per System keeps runs reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : eng_(seed) {}

  /// U(0,1).
  double uniform() { return unit_(eng_); }
  /// U[lo, hi) real.
  double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Exponential with the given mean (mean > 0).
  double exponential(double mean);
  bool bernoulli(double p) { return uniform() < p; }
  /// Truncated normal (resampled into [lo, hi]).
  double normal(double mean, double stddev, double lo, double hi);

  std::mt19937_64& engine() { return eng_; }

 private:
  std::mt19937_64 eng_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

/// Zipf-distributed integers over {0, ..., n-1}: P(k) ~ 1/(k+1)^theta.
/// Precomputes the CDF once; sampling is a binary search (O(log n)).
class ZipfGenerator {
 public:
  ZipfGenerator(std::size_t n, double theta);
  /// Draw a rank (0 = most popular).
  std::size_t sample(Rng& rng) const;
  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace gemsd::sim
