#pragma once

#include <coroutine>
#include <deque>
#include <string>

#include "sim/scheduler.hpp"
#include "sim/stats.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace gemsd::sim {

/// A k-server FCFS queueing station (CPU set, disk arm, GEM port, network
/// link, MPL slot pool...). Collects utilization, queue-length and waiting
/// time statistics.
class Resource {
 public:
  Resource(Scheduler& sched, int capacity, std::string name = "");

  /// Awaitable: acquire one server (FIFO). Resumes with the waiting time.
  auto acquire() {
    struct Awaiter {
      Resource& r;
      SimTime enq = -1.0;  // <0: granted without waiting
      bool await_ready() {
        if (r.busy_ < r.cap_) {
          r.grant_now();
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        enq = r.sched_.now();
        r.q_.push_back(h);
        r.qlen_tw_.set(enq, static_cast<double>(r.q_.size()));
      }
      double await_resume() {
        const double w = enq < 0.0 ? 0.0 : r.sched_.now() - enq;
        r.wait_.add(w);
        return w;
      }
    };
    return Awaiter{*this};
  }

  /// Release one server; hands the slot to the oldest waiter if any.
  void release();

  /// Acquire, hold for `service`, release. Returns the waiting time.
  Task<double> use(SimTime service);

  int capacity() const { return cap_; }
  int busy() const { return busy_; }
  std::size_t queue_length() const { return q_.size(); }
  const std::string& name() const { return name_; }

  /// Fraction of server-time busy since the last reset.
  double utilization() const {
    return busy_tw_.mean(sched_.now()) / static_cast<double>(cap_);
  }
  /// Busy server-seconds since the last reset (the utilization numerator
  /// before dividing by horizon and capacity; the time-series recorder
  /// differences this per window).
  double busy_time() const { return busy_tw_.integral(sched_.now()); }
  double mean_queue_length() const { return qlen_tw_.mean(sched_.now()); }
  const MeanStat& wait_stat() const { return wait_; }
  std::uint64_t completions() const { return completions_; }

  void reset_stats();

 private:
  friend struct AcquireAwaiter;
  void grant_now();

  Scheduler& sched_;
  int cap_;
  int busy_ = 0;
  std::string name_;
  std::deque<std::coroutine_handle<>> q_;
  TimeWeighted busy_tw_;
  TimeWeighted qlen_tw_;
  MeanStat wait_;
  std::uint64_t completions_ = 0;
};

}  // namespace gemsd::sim
