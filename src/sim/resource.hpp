#pragma once

#include <coroutine>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "sim/scheduler.hpp"
#include "sim/stats.hpp"
#include "sim/task.hpp"
#include "sim/time.hpp"

namespace gemsd::sim {

/// A k-server FCFS queueing station (CPU set, disk arm, GEM port, network
/// link, MPL slot pool...). Collects utilization, queue-length and waiting
/// time statistics, plus the exact integrals operational analysis needs:
/// arrivals, in-horizon waiting time of completed and still-queued waiters,
/// and the running queue maximum, so Little's law can be checked as an
/// identity on the time-integrals rather than an estimate.
class Resource {
 public:
  Resource(Scheduler& sched, int capacity, std::string name = "");

  /// Awaitable: acquire one server (FIFO). Resumes with the waiting time.
  auto acquire() {
    struct Awaiter {
      Resource& r;
      SimTime enq = -1.0;  // <0: granted without waiting
      bool await_ready() {
        ++r.arrivals_;
        if (r.busy_ < r.cap_) {
          r.grant_now();
          return true;
        }
        return false;
      }
      void await_suspend(std::coroutine_handle<> h) {
        enq = r.sched_.now();
        r.q_.push_back(Waiter{h, enq});
        r.qlen_tw_.set(enq, static_cast<double>(r.q_.size()));
        if (r.q_.size() > r.queue_max_) r.queue_max_ = r.q_.size();
      }
      double await_resume() {
        const double w = enq < 0.0 ? 0.0 : r.sched_.now() - enq;
        r.note_granted(enq, w);
        return w;
      }
    };
    return Awaiter{*this};
  }

  /// Release one server; hands the slot to the oldest waiter if any.
  void release();

  /// Acquire, hold for `service`, release. Returns the waiting time.
  Task<double> use(SimTime service);

  int capacity() const { return cap_; }
  int busy() const { return busy_; }
  std::size_t queue_length() const { return q_.size(); }
  const std::string& name() const { return name_; }

  /// Fraction of server-time busy since the last reset.
  double utilization() const {
    return busy_tw_.mean(sched_.now()) / static_cast<double>(cap_);
  }
  /// Busy server-seconds since the last reset (the utilization numerator
  /// before dividing by horizon and capacity; the time-series recorder
  /// differences this per window).
  double busy_time() const { return busy_tw_.integral(sched_.now()); }
  double mean_queue_length() const { return qlen_tw_.mean(sched_.now()); }
  /// Queue-length time-integral (waiter-seconds) since the last reset: the
  /// left-hand side of the exact Little identity
  ///   queue_integral == waited_time + pending_wait_time.
  double queue_integral() const { return qlen_tw_.integral(sched_.now()); }
  /// Largest queue length observed since the last reset.
  std::size_t queue_max() const { return queue_max_; }
  const MeanStat& wait_stat() const { return wait_; }
  /// Acquisitions started since the last reset (immediate grants and
  /// enqueues alike); symmetric to completions().
  std::uint64_t arrivals() const { return arrivals_; }
  std::uint64_t completions() const { return completions_; }
  /// In-horizon waiting time (waiter-seconds) of waits that were *granted*
  /// since the last reset; waits that straddle the reset only count the part
  /// inside the horizon.
  double waited_time() const { return waited_s_; }
  /// In-horizon waiting time accrued so far by waiters still in the queue.
  double pending_wait_time() const {
    const SimTime now = sched_.now();
    double s = 0.0;
    for (const Waiter& w : q_) {
      s += now - (w.enq > horizon_start_ ? w.enq : horizon_start_);
    }
    return s;
  }
  /// Jobs in the station (busy servers + queue) at the last reset; closes
  /// the flow-balance identity
  ///   arrivals - completions == in_system_now - in_system_at_reset.
  std::uint64_t in_system_at_reset() const { return in_system_at_reset_; }
  std::uint64_t in_system() const {
    return static_cast<std::uint64_t>(busy_) +
           static_cast<std::uint64_t>(q_.size());
  }

  /// Observer-owned wait sketch: when set, every acquisition's waiting time
  /// is counted into `buckets[layout->index(w)]`. The obs layer owns both
  /// and must keep them alive; null (the default) keeps the hot path to a
  /// single branch and the schedule untouched either way.
  void set_wait_buckets(const LogBuckets* layout,
                        std::vector<std::uint64_t>* buckets) {
    wait_layout_ = layout;
    wait_buckets_ = buckets;
  }

  void reset_stats();

 private:
  struct Waiter {
    std::coroutine_handle<> h;
    SimTime enq;
  };

  void grant_now();
  void note_granted(SimTime enq, double wait) {
    wait_.add(wait);
    if (enq >= 0.0) {
      const SimTime from = enq > horizon_start_ ? enq : horizon_start_;
      waited_s_ += sched_.now() - from;
    }
    if (wait_buckets_) ++(*wait_buckets_)[wait_layout_->index(wait)];
  }

  Scheduler& sched_;
  int cap_;
  int busy_ = 0;
  std::string name_;
  std::deque<Waiter> q_;
  TimeWeighted busy_tw_;
  TimeWeighted qlen_tw_;
  MeanStat wait_;
  std::uint64_t arrivals_ = 0;
  std::uint64_t completions_ = 0;
  double waited_s_ = 0.0;
  std::size_t queue_max_ = 0;
  SimTime horizon_start_ = 0.0;
  std::uint64_t in_system_at_reset_ = 0;
  const LogBuckets* wait_layout_ = nullptr;
  std::vector<std::uint64_t>* wait_buckets_ = nullptr;
};

}  // namespace gemsd::sim
