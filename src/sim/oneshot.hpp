#pragma once

#include <cassert>
#include <coroutine>
#include <optional>

#include "sim/scheduler.hpp"

namespace gemsd::sim {

/// One-shot rendezvous between a single waiter and a single producer
/// (request/response messaging). The producer may set the value before or
/// after the consumer starts waiting; the consumer is resumed through the
/// event queue at the producer's set() time.
template <typename T>
class OneShot {
 public:
  explicit OneShot(Scheduler& sched) : sched_(sched) {}
  OneShot(const OneShot&) = delete;
  OneShot& operator=(const OneShot&) = delete;

  void set(T v) {
    assert(!value_.has_value() && "OneShot::set called twice");
    value_.emplace(std::move(v));
    if (waiter_) {
      sched_.schedule(sched_.now(), waiter_);
      waiter_ = {};
    }
  }

  bool ready() const { return value_.has_value(); }

  auto wait() {
    struct Awaiter {
      OneShot& o;
      bool await_ready() const noexcept { return o.value_.has_value(); }
      void await_suspend(std::coroutine_handle<> h) {
        assert(!o.waiter_ && "OneShot supports a single waiter");
        o.waiter_ = h;
      }
      T await_resume() { return std::move(*o.value_); }
    };
    return Awaiter{*this};
  }

 private:
  Scheduler& sched_;
  std::optional<T> value_;
  std::coroutine_handle<> waiter_{};
};

}  // namespace gemsd::sim
