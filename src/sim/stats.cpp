#include "sim/stats.hpp"

namespace gemsd::sim {

double log_buckets_quantile(const LogBuckets& lb,
                            const std::vector<std::uint64_t>& buckets,
                            std::uint64_t total, double q) {
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  double cum = 0.0;
  for (int i = 0; i < static_cast<int>(buckets.size()); ++i) {
    const double b = static_cast<double>(buckets[static_cast<std::size_t>(i)]);
    if (cum + b >= target && b > 0) {
      const double frac = (target - cum) / b;
      if (i == 0) return lb.lo() * frac;  // underflow bucket: interpolate to lo
      const double lower = lb.lower(i);
      const double upper = lb.lower(i + 1);
      return lower + frac * (upper - lower);
    }
    cum += b;
  }
  return lb.lower(static_cast<int>(buckets.size()));
}

Histogram::Histogram(double lo, double hi, int bins)
    : layout_(lo, hi, bins),
      buckets_(static_cast<std::size_t>(bins) + 2, 0) {}

void Histogram::add(double x) {
  ++total_;
  ++buckets_[static_cast<std::size_t>(layout_.index(x))];
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  total_ = 0;
}

double Histogram::quantile(double q) const {
  return log_buckets_quantile(layout_, buckets_, total_, q);
}

}  // namespace gemsd::sim
