#include "sim/stats.hpp"

namespace gemsd::sim {

Histogram::Histogram(double lo, double hi, int bins)
    : lo_(lo),
      log_lo_(std::log(lo)),
      log_ratio_((std::log(hi) - std::log(lo)) / bins),
      buckets_(static_cast<std::size_t>(bins) + 2, 0) {}

void Histogram::add(double x) {
  ++total_;
  int idx;
  if (x < lo_) {
    idx = 0;
  } else {
    const int b =
        static_cast<int>((std::log(x) - log_lo_) / log_ratio_);
    idx = std::min(b + 1, static_cast<int>(buckets_.size()) - 1);
  }
  ++buckets_[static_cast<std::size_t>(idx)];
}

void Histogram::reset() {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  total_ = 0;
}

double Histogram::bucket_lower(int i) const {
  // i is the index into buckets_ (1-based for the regular range).
  return std::exp(log_lo_ + (i - 1) * log_ratio_);
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return 0.0;
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (int i = 0; i < static_cast<int>(buckets_.size()); ++i) {
    const double b = static_cast<double>(buckets_[static_cast<std::size_t>(i)]);
    if (cum + b >= target && b > 0) {
      const double frac = (target - cum) / b;
      if (i == 0) return lo_ * frac;  // underflow bucket: interpolate to lo
      const double lower = bucket_lower(i);
      const double upper = bucket_lower(i + 1);
      return lower + frac * (upper - lower);
    }
    cum += b;
  }
  return bucket_lower(static_cast<int>(buckets_.size()));
}

}  // namespace gemsd::sim
