// Simulation-methodology walkthrough: validate the discrete-event simulator
// against closed-form queueing theory, then against the analytic
// debit-credit baseline, and show the batch-means confidence intervals that
// qualify every reported number.
#include <cstdio>

#include "core/analytic.hpp"
#include "core/experiment.hpp"
#include "sim/queueing.hpp"

int main() {
  using namespace gemsd;

  std::printf("== 1. Station-level: M/M/4 CPU at the debit-credit operating "
              "point ==\n");
  // 100 TPS x ~10 CPU bursts per txn against 4 processors of 10 MIPS.
  const double burst = 25e-3 / 10.0;  // ~250k instr over ~10 bursts
  const double lam = 100.0 * 10.0;
  std::printf("Erlang-C wait probability: %.3f\n",
              sim::erlang_c(4, lam * burst));
  std::printf("theoretical wait per burst: %.3f ms -> ~%.1f ms per txn\n",
              sim::mmk_wait(lam, burst, 4) * 1e3,
              sim::mmk_wait(lam, burst, 4) * 1e4);

  std::printf("\n== 2. System-level: analytic baseline vs simulator "
              "(affinity routing, conflict-light) ==\n");
  std::printf("%-22s %10s %12s %10s\n", "config", "sim [ms]", "analytic[ms]",
              "ci95 [ms]");
  for (UpdateStrategy u : {UpdateStrategy::NoForce, UpdateStrategy::Force}) {
    for (int buf : {200, 1000}) {
      SystemConfig cfg = make_debit_credit_config();
      cfg.nodes = 4;
      cfg.routing = Routing::Affinity;
      cfg.update = u;
      cfg.buffer_pages = buf;
      cfg.warmup = 4;
      cfg.measure = 16;
      const RunResult r = run_debit_credit(cfg);
      const auto pred = predict_debit_credit(cfg, r.hit_ratio[0]);
      std::printf("%-10s buf=%-6d %10.2f %12.2f %10.2f\n", to_string(u), buf,
                  r.resp_ms, pred.total * 1e3, r.resp_ci_ms);
    }
  }
  std::printf("\nThe analytic model has no coherency traffic and no lock "
              "waits, so it only matches where those are negligible — every "
              "effect the paper studies (random routing, invalidations, "
              "message overhead) appears as a measured delta against this "
              "validated baseline.\n");
  return 0;
}
