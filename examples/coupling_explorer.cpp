// Coupling design-space explorer: how do the paper's conclusions shift when
// the technology constants change? Sweeps GEM entry access time (how fast
// must a coupling facility be?) and message path length (how cheap must
// messaging get before loose coupling catches up?) — the two knobs that
// decide the close-vs-loose trade-off.
//
//   ./coupling_explorer [--nodes=N] [--measure=S]
#include <cstdio>
#include <cstring>
#include <string>

#include "core/experiment.hpp"

int main(int argc, char** argv) {
  using namespace gemsd;
  int nodes = 8;
  double measure = 10.0, warmup = 3.0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--nodes=", 0) == 0) nodes = std::atoi(a.c_str() + 8);
    else if (a.rfind("--measure=", 0) == 0) measure = std::atof(a.c_str() + 10);
  }

  std::printf("== How slow can GEM entries get? (GEM locking, random "
              "routing, NOFORCE, N=%d) ==\n", nodes);
  std::printf("%12s %10s %8s %8s\n", "entry[us]", "resp[ms]", "gem", "cpu");
  for (double us : {2.0, 10.0, 50.0, 200.0, 1000.0}) {
    SystemConfig cfg = make_debit_credit_config();
    cfg.nodes = nodes;
    cfg.coupling = Coupling::GemLocking;
    cfg.routing = Routing::Random;
    cfg.warmup = warmup;
    cfg.measure = measure;
    cfg.gem.entry_access = us * 1e-6;
    const RunResult r = run_debit_credit(cfg);
    std::printf("%12.0f %10.2f %7.2f%% %7.1f%%\n", us, r.resp_ms,
                r.gem_util * 100, r.cpu_util * 100);
  }
  std::printf("(the paper's lock-engine comparison [Yu87] assumed 100-500 us "
              "lock service times — visible above as GEM queueing)\n");

  std::printf("\n== How cheap must messages get for PCL? (PCL, random "
              "routing, NOFORCE, N=%d) ==\n", nodes);
  std::printf("%14s %10s %8s %8s %8s\n", "instr/msg", "resp[ms]", "cpu",
              "cpuMax", "tps80/nd");
  for (double instr : {5000.0, 2500.0, 1000.0, 500.0, 100.0}) {
    SystemConfig cfg = make_debit_credit_config();
    cfg.nodes = nodes;
    cfg.coupling = Coupling::PrimaryCopy;
    cfg.routing = Routing::Random;
    cfg.warmup = warmup;
    cfg.measure = measure;
    cfg.comm.short_instr = instr;
    cfg.comm.long_instr = instr * 1.6;
    const RunResult r = run_debit_credit(cfg);
    std::printf("%14.0f %10.2f %7.1f%% %7.1f%% %8.1f\n", instr, r.resp_ms,
                r.cpu_util * 100, r.cpu_util_max * 100, r.tps_per_node_at_80);
  }
  std::printf("(at ~100 instructions per send/receive, loose coupling's "
              "communication penalty nearly disappears — the paper's premise "
              "is the 5000-instruction reality of 1993 protocol stacks)\n");
  return 0;
}
