// Build your own workload: describe transaction classes over custom
// partitions with the general synthetic workload generator, and compare
// coupling modes on it. Models a small order-entry system: a write-heavy
// "new-order" class partitioned by warehouse, a read-only "stock-scan"
// class over the shared stock table, and a rare "report" scan.
#include <cstdio>

#include "core/system.hpp"
#include "workload/synthetic.hpp"

int main() {
  using namespace gemsd;
  using namespace gemsd::workload;

  SystemConfig base;
  base.nodes = 4;
  base.arrival_rate_per_node = 60.0;
  base.buffer_pages = 1500;  // PRICES (800 pages) fits: scans run at memory speed
  base.mpl = 100;
  base.path.bot_instr = 20000;
  base.path.per_ref_instr = 5000;
  base.path.eot_instr = 20000;
  base.partitions.resize(3);
  base.partitions[0] = {.name = "ORDERS",
                        .pages_per_unit = 4000,
                        .blocking_factor = 10,
                        .locked = true,
                        .scale_with_nodes = false,
                        .storage = StorageKind::Disk,
                        .disks_per_unit = 10};
  base.partitions[1] = {.name = "STOCK",
                        .pages_per_unit = 12000,
                        .blocking_factor = 10,
                        .locked = true,
                        .scale_with_nodes = false,
                        .storage = StorageKind::Disk,
                        .disks_per_unit = 10};
  base.partitions[2] = {.name = "PRICES",
                        .pages_per_unit = 800,
                        .blocking_factor = 20,
                        .locked = true,
                        .scale_with_nodes = false,
                        .storage = StorageKind::Disk,
                        .disks_per_unit = 8};

  SyntheticSpec spec;
  spec.affinity_keys = 512;  // warehouses
  // Writes stay inside the warehouse's own page regions (locality 1):
  // cross-warehouse write conflicts cannot happen, mirroring how the paper's
  // debit-credit branches partition. The long read-only classes scan data
  // that nobody writes (PRICES) or spread thin over STOCK — the conflict
  // structure a sane schema design produces (and without which any strict-2PL
  // system, simulated or real, collapses; see the trace generator notes).
  TxnClass new_order{.name = "new-order",
                     .weight = 6,
                     .mean_refs = 10,
                     .write_fraction = 0.4,
                     .update_intent = true,
                     .partitions = {0, 1},
                     .zipf_theta = 0.7,
                     .locality = 1.0};
  TxnClass stock_scan{.name = "stock-scan",
                      .weight = 3,
                      .mean_refs = 20,
                      .write_fraction = 0.0,
                      .update_intent = false,
                      .partitions = {2},
                      .zipf_theta = 1.0,
                      .locality = 0.0};
  TxnClass report{.name = "report",
                  .weight = 1,
                  .mean_refs = 80,
                  .write_fraction = 0.0,
                  .update_intent = false,
                  .partitions = {2},
                  .zipf_theta = 0.3,
                  .locality = 0.0};
  spec.classes = {new_order, stock_scan, report};

  std::printf("%-8s %-9s | %9s %9s %7s %7s %7s %8s\n", "coupling", "routing",
              "resp[ms]", "p95[ms]", "cpu", "locLck", "msg/tx", "dl");
  for (Coupling c : {Coupling::GemLocking, Coupling::PrimaryCopy}) {
    for (Routing ro : {Routing::Affinity, Routing::Random}) {
      SystemConfig cfg = base;
      cfg.coupling = c;
      cfg.routing = ro;
      cfg.warmup = 4;
      cfg.measure = 16;
      System::Workload wl;
      auto bundle = make_synthetic_workload(cfg, spec);
      wl.gen = std::move(bundle.gen);
      wl.router = std::move(bundle.router);
      wl.gla = std::move(bundle.gla);
      System sys(cfg, std::move(wl));
      const RunResult r = sys.run();
      std::printf("%-8s %-9s | %9.1f %9.1f %6.1f%% %6.1f%% %7.2f %8llu\n",
                  to_string(c), to_string(ro), r.resp_ms, r.resp_p95_ms,
                  r.cpu_util * 100, r.local_lock_fraction * 100,
                  r.messages_per_txn,
                  static_cast<unsigned long long>(r.deadlocks));
    }
  }
  std::printf("\nThe paper's conclusion carries over to this workload: close "
              "coupling is insensitive to the routing policy, loose coupling "
              "pays for every remote lock authority.\n");
  return 0;
}
