// Engine parallelism profiling, end to end: run the LP-native cluster model
// with node 0 turned into a deterministic straggler, attach the engine
// profiler, and write both profiler outputs —
//
//   lp_cluster_engprof.json        gemsd.engprof.v1 aggregates
//                                  (gemsd_analyze --engine-profile ...)
//   lp_cluster_engprof_trace.json  wall-clock Perfetto/Chrome timeline
//                                  (load at ui.perfetto.dev)
//
// — plus the printed report: node0 should dominate critical windows, the
// node <-> server lookahead edges should bound nearly every window, and the
// measured speedup should sit at or below its critical-LP bound. The
// simulation checksum is printed twice (profiled and unprofiled run) to show
// the profiler perturbs nothing.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/lp_cluster_profile
#include <cstdio>
#include <fstream>

#include "obs/engprof.hpp"
#include "sim/lp_cluster.hpp"

int main() {
  using namespace gemsd;

  sim::LpClusterConfig cfg;
  cfg.nodes = 8;
  cfg.mpl = 16;
  cfg.txns_per_node = 200;
  cfg.kind = sim::EngineKind::Parallel;
  cfg.workers = 4;
  // Node 0 runs 3x-long transactions: its window drains dwarf everyone
  // else's, so it should surface as the top straggler LP in the report.
  cfg.straggler_extra_requests = 2 * cfg.requests_per_txn;

  obs::EngProfiler profiler;
  cfg.profiler = &profiler;
  const sim::LpClusterResult r = sim::run_lp_cluster(cfg);

  cfg.profiler = nullptr;
  const sim::LpClusterResult plain = sim::run_lp_cluster(cfg);

  std::printf("commits %llu  events %llu  windows %llu (%llu degenerate)\n",
              static_cast<unsigned long long>(r.commits),
              static_cast<unsigned long long>(r.events),
              static_cast<unsigned long long>(r.windows),
              static_cast<unsigned long long>(r.degenerate_windows));
  std::printf("checksum profiled   %016llx\n",
              static_cast<unsigned long long>(r.checksum));
  std::printf("checksum unprofiled %016llx (%s)\n\n",
              static_cast<unsigned long long>(plain.checksum),
              r.checksum == plain.checksum ? "identical — profiler is inert"
                                           : "MISMATCH");

  const obs::EngProfile p = profiler.snapshot();
  std::fputs(obs::format_engprof(p).c_str(), stdout);

  std::ofstream("lp_cluster_engprof.json")
      << obs::engprof_json(p, {}) << "\n";
  std::ofstream("lp_cluster_engprof_trace.json")
      << obs::engprof_chrome_json(p, {}) << "\n";
  std::printf("\nwrote lp_cluster_engprof.json (gemsd_analyze "
              "--engine-profile) and\n      lp_cluster_engprof_trace.json "
              "(load at ui.perfetto.dev)\n");
  return r.checksum == plain.checksum ? 0 : 1;
}
