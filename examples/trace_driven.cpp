// Trace-driven simulation walkthrough:
//   1. generate a synthetic trace with the paper's real-life characteristics
//      (or load one from a file in the gemsd text format),
//   2. print its aggregate statistics and the computed affinity routing
//      table + GLA assignment,
//   3. replay it through closely and loosely coupled clusters.
//
//   ./trace_driven [--load=FILE] [--save=FILE] [--nodes=N] [--measure=S]
#include <cstdio>
#include <cstring>
#include <string>

#include "core/experiment.hpp"
#include "workload/trace_generator.hpp"

int main(int argc, char** argv) {
  using namespace gemsd;
  std::string load_path, save_path;
  int nodes = 4;
  double measure = 20.0, warmup = 8.0;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--load=", 0) == 0) load_path = a.substr(7);
    else if (a.rfind("--save=", 0) == 0) save_path = a.substr(7);
    else if (a.rfind("--nodes=", 0) == 0) nodes = std::atoi(a.c_str() + 8);
    else if (a.rfind("--measure=", 0) == 0) measure = std::atof(a.c_str() + 10);
    else if (a.rfind("--warmup=", 0) == 0) warmup = std::atof(a.c_str() + 9);
  }

  workload::Trace trace;
  if (!load_path.empty()) {
    trace = workload::Trace::load_file(load_path);
    std::printf("loaded trace from %s\n", load_path.c_str());
  } else {
    sim::Rng rng(7);
    trace = workload::generate_synthetic_trace({}, rng);
    std::printf("generated synthetic trace (see DESIGN.md for the "
                "substitution rationale)\n");
  }
  if (!save_path.empty()) {
    trace.save_file(save_path);
    std::printf("saved trace to %s\n", save_path.c_str());
  }

  const auto stats = workload::compute_stats(trace);
  std::printf("\ntrace characteristics (paper: 17.5k txns, ~1M refs, 66k "
              "pages, 20%% update txns, 1.6%% write refs, largest >11k):\n"
              "  %zu txns, %zu refs (avg %.1f), %zu distinct pages,\n"
              "  %.1f%% update txns, %.2f%% write refs, largest txn %zu\n",
              stats.transactions, stats.references, stats.mean_refs,
              stats.distinct_pages, stats.update_txn_fraction * 100,
              stats.write_ref_fraction * 100, stats.largest_txn);

  // Show what the allocation heuristics [Ra92b] computed.
  const auto profile = workload::profile_trace(trace);
  const auto share = workload::make_affinity_routing(profile, nodes);
  const auto gla = workload::make_gla_assignment(profile, share, nodes);
  std::printf("\naffinity routing table (type -> node shares):\n");
  for (std::size_t ty = 0; ty < share.size(); ++ty) {
    std::printf("  type %2zu:", ty);
    for (double v : share[ty]) std::printf(" %4.0f%%", v * 100);
    std::printf("\n");
  }
  std::printf("GLA assignment (file -> node):");
  for (std::size_t f = 0; f < gla.size(); ++f) {
    std::printf(" F%zu->%d", f, gla[f]);
  }
  std::printf("\n");

  std::printf("\nreplaying at 50 TPS/node, %d nodes, buffer 1000, NOFORCE:\n",
              nodes);
  std::printf("%-12s %-9s %9s %9s %7s %7s %7s\n", "coupling", "routing",
              "resp[ms]", "norm[ms]", "cpuAvg", "locLck", "msg/tx");
  for (Coupling c : {Coupling::GemLocking, Coupling::PrimaryCopy}) {
    for (Routing ro : {Routing::Affinity, Routing::Random}) {
      SystemConfig cfg = make_trace_config(trace);
      cfg.nodes = nodes;
      cfg.coupling = c;
      cfg.routing = ro;
      cfg.warmup = warmup;
      cfg.measure = measure;
      const RunResult r = run_trace(cfg, trace);
      std::printf("%-12s %-9s %9.1f %9.1f %6.1f%% %6.1f%% %7.2f\n",
                  to_string(c), to_string(ro), r.resp_ms,
                  r.resp_norm_ms * stats.mean_refs, r.cpu_util * 100,
                  r.local_lock_fraction * 100, r.messages_per_txn);
    }
  }
  return 0;
}
