// Full debit-credit study CLI: configure coupling mode, update strategy,
// routing, buffer size, node count, storage allocation of the hot
// BRANCH/TELLER partition — and get the complete metric panel the paper's
// analysis is based on (response time composition, hit ratios, lock and
// message statistics, device utilizations).
//
//   ./debit_credit_cluster --nodes=8 --coupling=pcl --update=force
//       --routing=random --buffer=1000 --bt=nvcache --measure=20
#include <cstdio>
#include <cstring>
#include <string>

#include "core/experiment.hpp"

namespace {

void usage() {
  std::puts(
      "debit_credit_cluster [options]\n"
      "  --nodes=N          1..10 (default 4)\n"
      "  --tps=R            arrival rate per node (default 100)\n"
      "  --coupling=gem|pcl close (GEM locking) or loose (primary copy)\n"
      "  --update=noforce|force\n"
      "  --routing=affinity|random\n"
      "  --buffer=P         pages per node (default 200)\n"
      "  --bt=disk|vcache|nvcache|gem   BRANCH/TELLER allocation\n"
      "  --log=disk|gem     log allocation\n"
      "  --warmup=S --measure=S\n"
      "  --seed=K");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gemsd;
  SystemConfig cfg = make_debit_credit_config();
  cfg.nodes = 4;
  cfg.warmup = 5;
  cfg.measure = 20;

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto val = [&](const char* key) -> const char* {
      const std::size_t n = std::strlen(key);
      return a.compare(0, n, key) == 0 ? a.c_str() + n : nullptr;
    };
    if (const char* v = val("--nodes=")) {
      cfg.nodes = std::atoi(v);
    } else if (const char* v = val("--tps=")) {
      cfg.arrival_rate_per_node = std::atof(v);
    } else if (const char* v = val("--coupling=")) {
      cfg.coupling = std::string(v) == "pcl" ? Coupling::PrimaryCopy
                                             : Coupling::GemLocking;
    } else if (const char* v = val("--update=")) {
      cfg.update = std::string(v) == "force" ? UpdateStrategy::Force
                                             : UpdateStrategy::NoForce;
    } else if (const char* v = val("--routing=")) {
      cfg.routing = std::string(v) == "random" ? Routing::Random
                                               : Routing::Affinity;
    } else if (const char* v = val("--buffer=")) {
      cfg.buffer_pages = std::atoi(v);
    } else if (const char* v = val("--bt=")) {
      const std::string s = v;
      auto& bt = cfg.partitions[DebitCreditIds::kBranchTeller];
      bt.storage = s == "gem"      ? StorageKind::Gem
                   : s == "vcache" ? StorageKind::DiskVolatileCache
                   : s == "nvcache" ? StorageKind::DiskNvCache
                                    : StorageKind::Disk;
    } else if (const char* v = val("--log=")) {
      cfg.log_storage = std::string(v) == "gem" ? StorageKind::Gem
                                                : StorageKind::Disk;
    } else if (const char* v = val("--warmup=")) {
      cfg.warmup = std::atof(v);
    } else if (const char* v = val("--measure=")) {
      cfg.measure = std::atof(v);
    } else if (const char* v = val("--seed=")) {
      cfg.seed = static_cast<std::uint64_t>(std::atoll(v));
    } else {
      usage();
      return a == "--help" ? 0 : 1;
    }
  }

  System sys(cfg, make_debit_credit_workload(cfg));
  const RunResult r = sys.run();

  std::printf("configuration: %s, N=%d, %.0f TPS/node, buffer %d, B/T on %s\n",
              r.label().c_str(), cfg.nodes, cfg.arrival_rate_per_node,
              cfg.buffer_pages,
              to_string(cfg.partitions[DebitCreditIds::kBranchTeller].storage));
  print_table("debit-credit run", {r}, debit_credit_partition_names(), true);

  std::printf("\ndevice detail:\n");
  std::printf("  GEM: util %.2f%%  page-ops %llu  entry-ops %llu\n",
              sys.gem().utilization() * 100,
              static_cast<unsigned long long>(sys.gem().page_ops()),
              static_cast<unsigned long long>(sys.gem().entry_ops()));
  std::printf("  network: util %.1f%%  short %llu  long %llu\n",
              sys.network().utilization() * 100,
              static_cast<unsigned long long>(sys.network().short_count()),
              static_cast<unsigned long long>(sys.network().long_count()));
  for (std::size_t p = 0; p < cfg.partitions.size(); ++p) {
    auto* g = sys.storage().group(static_cast<PartitionId>(p));
    if (!g) {
      std::printf("  %-14s resident in GEM\n", cfg.partitions[p].name.c_str());
      continue;
    }
    std::printf("  %-14s arms %.1f%% busy, %llu reads, %llu writes%s\n",
                cfg.partitions[p].name.c_str(), g->arm_utilization() * 100,
                static_cast<unsigned long long>(g->reads()),
                static_cast<unsigned long long>(g->writes()),
                g->has_cache() ? " (cached)" : "");
  }
  return 0;
}
