// Quickstart: simulate a 4-node closely coupled database sharing cluster
// running the debit-credit workload, and print the headline metrics.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart
#include <cstdio>

#include "core/config.hpp"
#include "core/experiment.hpp"
#include "core/report.hpp"
#include "core/system.hpp"

int main() {
  using namespace gemsd;

  // Table 4.1 defaults: 100 TPS/node, 4x10 MIPS CPUs, 200-page buffers,
  // GEM with 50us page / 2us entry access times.
  SystemConfig cfg = make_debit_credit_config();
  cfg.nodes = 4;
  cfg.coupling = Coupling::GemLocking;  // global lock table in GEM
  cfg.update = UpdateStrategy::NoForce;
  cfg.routing = Routing::Affinity;      // branch-partitioned routing
  cfg.warmup = 3.0;
  cfg.measure = 10.0;

  const RunResult r = run_debit_credit(cfg);

  std::printf("nodes ................. %d\n", r.nodes);
  std::printf("throughput ............ %.1f txn/s\n", r.throughput);
  std::printf("mean response time .... %.2f ms (p95 %.1f ms)\n", r.resp_ms,
              r.resp_p95_ms);
  std::printf("CPU utilization ....... %.1f %%\n", r.cpu_util * 100);
  std::printf("GEM utilization ....... %.2f %%\n", r.gem_util * 100);
  std::printf("B/T buffer hit ratio .. %.1f %%\n", r.hit_ratio[0] * 100);
  std::printf("HISTORY hit ratio ..... %.1f %%\n", r.hit_ratio[2] * 100);
  std::printf("messages per txn ...... %.2f\n", r.messages_per_txn);
  std::printf("response breakdown .... cpu %.1f + cpuWait %.1f + io %.1f + "
              "cc %.1f ms\n",
              r.brk_cpu_ms, r.brk_cpu_wait_ms, r.brk_io_ms, r.brk_cc_ms);
  return 0;
}
