// gemsd_analyze — interpret the observability layer's outputs:
//
//   gemsd_analyze <trace.json> [--results=FILE] [--run=I] [--top=K]
//                 [--tolerance=T]
//       Contention attribution from a "gemsd.trace.v1" Chrome trace: per-node
//       phase buckets, hottest pages, lock-conflict pairs, and a wait-for
//       graph replay with cycle detection. With --results, the attribution is
//       cross-checked against run I of a "gemsd.results.v1" document (phase
//       buckets must reconcile with breakdown_ms within the tolerance, the
//       replayed cycle count with the deadlock counter); a mismatch on a
//       complete trace (no ring drops) exits 1.
//
//   gemsd_analyze <trace.json> --critical-path[=FILE] [--top=K]
//       Critical-path profile instead of the attribution report: every second
//       of each committed transaction's response time classified (lock waits
//       resolved to the holder's concurrent activity, message gaps, restart
//       backoff) plus tail cohorts from the response-time percentiles. With
//       =FILE the "gemsd.critpath.v1" document is also written (validate with
//       gemsd_validate schemas/critpath.schema.json). On a complete trace
//       (no ring drops) fewer than 99% of transactions reconciling within 1%
//       of their traced response exits 1.
//
//   gemsd_analyze --compare <baseline.json> <candidate.json> [--tolerance=T]
//       Diff two results documents run by run (matched on config hash +
//       label + name). A throughput or response-time regression beyond the
//       batch-means CIs and the relative tolerance band exits 1 — the CI
//       bench-regression gate.
//
//   gemsd_analyze --timeseries <timeseries.json> [--csv=FILE]
//       Steady-state report from a "gemsd.timeseries.v1" document (written
//       by --timeseries on any bench or gemsd_run): MSER-5 warm-up estimate
//       checked against the configured --warmup cut (a too-short cut warns),
//       and a batch-means trend test over the measurement interval for
//       throughput and mean response. A drifting run exits 1 — the CI
//       steady-state gate. --csv=FILE also writes one row per window for
//       plotting.
//
//   gemsd_analyze --memory-budget=BYTES <results.json>
//       Memory gate over a "gemsd.results.v1" document's memory block
//       (written by every bench): peak_rss_bytes above the budget exits 1 —
//       the CI scale-out footprint gate. A document without a usable memory
//       reading (pre-memory results, non-Linux writer) exits 2.
//
//   gemsd_analyze --bottleneck[=FILE] [<resources.json>]
//       Capacity analysis from a "gemsd.resources.v1" document (written by
//       --resources on any bench, gemsd_run or gemsd_scenario): stations
//       ranked by utilization and service demand, the cluster bottleneck,
//       each station's saturation arrival rate, the asymptotic throughput
//       bound X_max = min_i capacity_i/demand_i, what-if projections at
//       1.5x/2x the measured arrival rate, and M/M/1 bottleneck-split
//       projections (e.g. GLT sharding). The operational laws are reconciled
//       first; a violation, or measured throughput above X_max (impossible
//       on a document the simulator wrote), exits 1 — the CI capacity gate.
//
//   gemsd_analyze --engine-profile <engprof.json> [--top=K]
//       Engine parallelism report from a "gemsd.engprof.v1" document
//       (written by --engine-profile on any bench or gemsd_run): top
//       straggler LPs, limiting lookahead edges ranked by the windows they
//       bounded, stall time by cause, and measured vs analytic max speedup.
//       A measured speedup above its critical-LP bound exits 1 — the bound
//       holds by construction, so exceeding it means a corrupt profile.
//
// Exit codes: 0 clean, 1 regression / failed cross-check, 2 bad input.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/analyze.hpp"
#include "obs/critpath.hpp"
#include "obs/engprof.hpp"
#include "obs/json.hpp"
#include "obs/resources.hpp"
#include "obs/timeseries.hpp"

namespace {

bool load_json(const std::string& path, gemsd::obs::JsonValue& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string error;
  if (!gemsd::obs::json_parse(ss.str(), out, error)) {
    std::fprintf(stderr, "error: %s: %s\n", path.c_str(), error.c_str());
    return false;
  }
  return true;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: gemsd_analyze <trace.json> [--results=FILE] [--run=I]\n"
      "                     [--top=K] [--tolerance=T]\n"
      "       gemsd_analyze <trace.json> --critical-path[=FILE] [--top=K]\n"
      "       gemsd_analyze --compare <baseline.json> <candidate.json>\n"
      "                     [--tolerance=T]\n"
      "       gemsd_analyze --bottleneck[=FILE] [<resources.json>]\n"
      "       gemsd_analyze --engine-profile <engprof.json> [--top=K]\n"
      "       gemsd_analyze --timeseries <timeseries.json> [--csv=FILE]\n"
      "       gemsd_analyze --memory-budget=BYTES <results.json>\n");
  return 2;
}

int run_compare(const std::string& base_path, const std::string& cand_path,
                double tolerance) {
  gemsd::obs::JsonValue base, cand;
  if (!load_json(base_path, base) || !load_json(cand_path, cand)) return 2;
  const gemsd::obs::CompareReport rep =
      gemsd::obs::compare_results(base, cand, tolerance);
  if (!rep.error.empty()) {
    std::fprintf(stderr, "error: %s\n", rep.error.c_str());
    return 2;
  }
  std::printf("baseline:  %s\ncandidate: %s\n", base_path.c_str(),
              cand_path.c_str());
  std::fputs(gemsd::obs::format_compare(rep, tolerance).c_str(), stdout);
  return rep.regressions > 0 ? 1 : 0;
}

int run_memory_budget(const std::string& results_path, double budget_bytes) {
  gemsd::obs::JsonValue doc;
  if (!load_json(results_path, doc)) return 2;
  const gemsd::obs::JsonValue* mem = doc.find("memory");
  const gemsd::obs::JsonValue* peak =
      mem ? mem->find("peak_rss_bytes") : nullptr;
  if (!peak || !peak->is_number() || peak->num <= 0.0) {
    std::fprintf(stderr,
                 "error: %s has no usable memory.peak_rss_bytes (results "
                 "written before the memory block, or on a platform without "
                 "RSS reporting)\n",
                 results_path.c_str());
    return 2;
  }
  const double used = peak->num;
  std::printf("memory budget: peak RSS %.1f MiB of %.1f MiB budget (%.1f%%)\n",
              used / (1024.0 * 1024.0), budget_bytes / (1024.0 * 1024.0),
              100.0 * used / budget_bytes);
  if (used > budget_bytes) {
    std::fprintf(stderr,
                 "FAIL: peak RSS %.0f bytes exceeds the budget of %.0f "
                 "bytes\n",
                 used, budget_bytes);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gemsd;

  std::string trace_path, results_path;
  std::string compare_base, compare_cand;
  bool compare = false;
  bool critpath = false;
  bool engprof = false;
  bool timeseries = false;
  bool bottleneck = false;
  double memory_budget = 0.0;  // > 0: --memory-budget mode
  std::string critpath_file;
  std::string csv_file;
  int run_index = 0;
  int top_k = 10;
  double tolerance = -1.0;  // mode-specific default

  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--compare") == 0) {
      compare = true;
    } else if (std::strcmp(a, "--engine-profile") == 0) {
      engprof = true;
    } else if (std::strcmp(a, "--timeseries") == 0) {
      timeseries = true;
    } else if (std::strcmp(a, "--bottleneck") == 0) {
      bottleneck = true;
    } else if (std::strncmp(a, "--bottleneck=", 13) == 0) {
      bottleneck = true;
      trace_path = a + 13;
    } else if (std::strncmp(a, "--memory-budget=", 16) == 0) {
      memory_budget = std::atof(a + 16);
      if (memory_budget <= 0.0) {
        std::fprintf(stderr, "error: bad --memory-budget value\n");
        return usage();
      }
    } else if (std::strncmp(a, "--csv=", 6) == 0) {
      csv_file = a + 6;
    } else if (std::strcmp(a, "--critical-path") == 0) {
      critpath = true;
    } else if (std::strncmp(a, "--critical-path=", 16) == 0) {
      critpath = true;
      critpath_file = a + 16;
    } else if (std::strncmp(a, "--results=", 10) == 0) {
      results_path = a + 10;
    } else if (std::strncmp(a, "--run=", 6) == 0) {
      run_index = std::atoi(a + 6);
    } else if (std::strncmp(a, "--top=", 6) == 0) {
      top_k = std::atoi(a + 6);
    } else if (std::strncmp(a, "--tolerance=", 12) == 0) {
      tolerance = std::atof(a + 12);
    } else if (a[0] == '-') {
      std::fprintf(stderr, "error: unknown option %s\n", a);
      return usage();
    } else if (compare && compare_base.empty()) {
      compare_base = a;
    } else if (compare && compare_cand.empty()) {
      compare_cand = a;
    } else if (!compare && trace_path.empty()) {
      trace_path = a;
    } else {
      return usage();
    }
  }

  if (compare) {
    if (compare_base.empty() || compare_cand.empty()) return usage();
    return run_compare(compare_base, compare_cand,
                       tolerance < 0.0 ? 0.05 : tolerance);
  }
  if (trace_path.empty()) return usage();
  if (memory_budget > 0.0) return run_memory_budget(trace_path, memory_budget);
  if (tolerance < 0.0) tolerance = 0.01;

  if (bottleneck) {
    obs::JsonValue doc;
    if (!load_json(trace_path, doc)) return 2;
    obs::ResourceSet s;
    std::string error;
    if (!obs::resources_from_json(doc, s, error)) {
      std::fprintf(stderr, "error: %s: %s\n", trace_path.c_str(),
                   error.c_str());
      return 2;
    }
    const std::vector<obs::LawViolation> laws = obs::check_resource_laws(s);
    const obs::BottleneckReport rep = obs::analyze_bottleneck(s);
    std::fputs(obs::format_bottleneck_report(s, rep, laws).c_str(), stdout);
    // Operational laws hold as identities on every document the simulator
    // writes, and measured throughput cannot exceed the asymptotic bound
    // X·D_i = U_i·c_i ≤ c_i. A violation means the document is corrupt (or
    // hand-edited) — fail the gate.
    if (!laws.empty()) {
      std::fprintf(stderr,
                   "error: %zu operational-law violation(s); first: %s: %s\n",
                   laws.size(), laws.front().resource.c_str(),
                   laws.front().what.c_str());
      return 1;
    }
    if (!rep.within_bound) {
      std::fprintf(stderr,
                   "error: measured throughput %.6g exceeds the asymptotic "
                   "bound %.6g — corrupt document\n",
                   rep.measured_x, rep.x_max);
      return 1;
    }
    return 0;
  }

  if (timeseries) {
    obs::JsonValue doc;
    if (!load_json(trace_path, doc)) return 2;
    obs::TsSeries s;
    std::string error;
    if (!obs::timeseries_from_json(doc, s, error)) {
      std::fprintf(stderr, "error: %s: %s\n", trace_path.c_str(),
                   error.c_str());
      return 2;
    }
    const obs::TsReport rep = obs::analyze_timeseries(s);
    std::fputs(obs::format_ts_report(s, rep).c_str(), stdout);
    if (!csv_file.empty()) {
      std::ofstream out(csv_file, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n", csv_file.c_str());
        return 2;
      }
      out << obs::timeseries_csv(s);
      std::printf("wrote %s\n", csv_file.c_str());
    }
    // A too-short warm-up cut is a warning (the headline numbers are
    // biased, not wrong); a drifting measurement interval fails the run —
    // steady-state metrics from a non-stationary run are meaningless.
    if (!rep.warmup_safe) {
      std::fprintf(stderr,
                   "warning: configured warm-up %.4g s is shorter than the "
                   "MSER-5 recommendation %.4g s\n",
                   rep.configured_warmup_s, rep.mser_warmup_s);
    }
    return rep.drifting ? 1 : 0;
  }

  if (engprof) {
    obs::JsonValue doc;
    if (!load_json(trace_path, doc)) return 2;
    obs::EngProfile p;
    std::string error;
    if (!obs::engprof_from_json(doc, p, error)) {
      std::fprintf(stderr, "error: %s: %s\n", trace_path.c_str(),
                   error.c_str());
      return 2;
    }
    std::fputs(obs::format_engprof(p, top_k).c_str(), stdout);
    // measured <= bound holds by construction of the profiler (every
    // window's wall span contains its longest drain span); a violation
    // beyond rounding means the document was not produced by it.
    if (p.measured_speedup > p.speedup_bound * (1.0 + 1e-9)) {
      std::fprintf(stderr,
                   "error: measured speedup %.3f exceeds its analytic bound "
                   "%.3f — corrupt profile\n",
                   p.measured_speedup, p.speedup_bound);
      return 1;
    }
    return 0;
  }

  obs::JsonValue doc;
  if (!load_json(trace_path, doc)) return 2;
  std::vector<obs::TraceEvent> events;
  std::uint64_t dropped = 0;
  std::string error;
  if (!obs::parse_chrome_trace(doc, events, dropped, error)) {
    std::fprintf(stderr, "error: %s: %s\n", trace_path.c_str(), error.c_str());
    return 2;
  }

  if (critpath) {
    const obs::CritPathAnalysis cp = obs::critical_path(events, dropped);
    std::fputs(obs::format_critical_path(cp, top_k).c_str(), stdout);
    if (!critpath_file.empty()) {
      std::ofstream out(critpath_file, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     critpath_file.c_str());
        return 2;
      }
      out << obs::critical_path_json(cp) << "\n";
      std::printf("wrote %s\n", critpath_file.c_str());
    }
    // On a complete trace the per-class seconds must reconcile with the
    // traced response for (essentially) every transaction; with ring drops
    // the profile is advisory only.
    if (dropped == 0 && cp.txns > 0 &&
        static_cast<double>(cp.txns_within_tol) <
            0.99 * static_cast<double>(cp.txns)) {
      std::fprintf(stderr,
                   "error: only %llu/%llu txns reconcile within 1%%\n",
                   static_cast<unsigned long long>(cp.txns_within_tol),
                   static_cast<unsigned long long>(cp.txns));
      return 1;
    }
    return 0;
  }

  const obs::TraceAnalysis analysis = obs::analyze_trace(events, dropped);
  std::fputs(obs::format_analysis(analysis, top_k).c_str(), stdout);

  int rc = 0;
  if (!results_path.empty()) {
    obs::JsonValue results;
    if (!load_json(results_path, results)) return 2;
    const obs::JsonValue* runs = results.find("runs");
    if (!runs || !runs->is_array() || runs->arr.empty()) {
      std::fprintf(stderr, "error: %s: no runs\n", results_path.c_str());
      return 2;
    }
    const auto idx = static_cast<std::size_t>(run_index < 0 ? 0 : run_index) %
                     runs->arr.size();
    const obs::JsonValue* metrics = runs->arr[idx].find("metrics");
    if (!metrics) {
      std::fprintf(stderr, "error: %s: run %zu has no metrics\n",
                   results_path.c_str(), idx);
      return 2;
    }

    const obs::Reconciliation rec =
        obs::reconcile(analysis, *metrics, tolerance);
    std::fputs(obs::format_reconciliation(rec).c_str(), stdout);

    const auto deadlocks = static_cast<std::uint64_t>(
        metrics->find("deadlocks") && metrics->find("deadlocks")->is_number()
            ? metrics->find("deadlocks")->num
            : 0.0);
    std::printf("deadlock cross-check: %llu cycles replayed vs %llu counted "
                "by the simulator\n",
                static_cast<unsigned long long>(analysis.cycles),
                static_cast<unsigned long long>(deadlocks));
    if (dropped > 0) {
      std::printf("note: %llu events dropped from the ring; cross-checks are "
                  "advisory only\n",
                  static_cast<unsigned long long>(dropped));
    } else {
      if (!rec.ok) rc = 1;
      if (analysis.cycles != deadlocks) rc = 1;
    }
  }
  return rc;
}
