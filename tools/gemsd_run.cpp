// gemsd_run — run any experiment from a small INI-style spec, no C++
// required:
//
//   ./gemsd_run spec.ini [more-specs.ini ...] [--csv] [--full] [--jobs=N]
//              [--metrics-json=FILE] [--trace=FILE] [--trace-run=I]
//              [--sample=S] [--slow-k=K] [--audit]
//
// Multiple specs are executed as one sweep on a worker pool (--jobs=N,
// default hardware_concurrency); results print in command-line order.
// --metrics-json writes the structured results report (all metrics,
// telemetry samples, slowest transactions); --trace writes a Chrome
// trace-event file for one of the runs (pick with --trace-run).
// See src/core/config_file.hpp for the spec format, and specs/*.ini for
// ready-made examples.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "core/config_file.hpp"
#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "workload/trace_generator.hpp"

int main(int argc, char** argv) {
  using namespace gemsd;
  bool csv = false, full = false;
  int jobs = 0;
  BenchOptions obs_opt;  // carries the telemetry/export flags
  obs_opt.sample_every = 0.0;
  obs_opt.slow_k = 0;
  obs_opt.no_json = true;  // only write JSON when --metrics-json is given
  std::vector<std::string> spec_files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--metrics-json=", 15) == 0) {
      obs_opt.metrics_json = argv[i] + 15;
      obs_opt.no_json = false;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      obs_opt.trace_file = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--trace-run=", 12) == 0) {
      obs_opt.trace_run = std::atoi(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--trace-capacity=", 17) == 0) {
      obs_opt.trace_capacity =
          static_cast<std::size_t>(std::atoll(argv[i] + 17));
    } else if (std::strncmp(argv[i], "--sample=", 9) == 0) {
      obs_opt.sample_every = std::atof(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--slow-k=", 9) == 0) {
      obs_opt.slow_k = std::atoi(argv[i] + 9);
    } else if (std::strcmp(argv[i], "--audit") == 0) {
      obs_opt.audit = true;
    } else {
      spec_files.push_back(argv[i]);
    }
  }
  if (spec_files.empty()) {
    std::fprintf(stderr,
                 "usage: gemsd_run <spec.ini> [more-specs.ini ...] "
                 "[--csv] [--full] [--jobs=N] [--metrics-json=FILE] "
                 "[--trace=FILE] [--trace-run=I] [--sample=S] "
                 "[--slow-k=K] [--audit]\n");
    return 1;
  }

  std::vector<RunSpec> specs(spec_files.size());
  for (std::size_t i = 0; i < spec_files.size(); ++i) {
    try {
      specs[i] = parse_run_spec_file(spec_files[i]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }

  struct SpecResult {
    RunResult r;
    SystemConfig cfg;
    std::vector<std::string> names;
  };
  std::vector<std::function<SpecResult()>> tasks;
  for (std::size_t si = 0; si < specs.size(); ++si) {
    const RunSpec& spec = specs[si];
    SystemConfig::ObsConfig obs;
    obs.sample_every = obs_opt.sample_every;
    obs.slow_k = obs_opt.slow_k;
    obs.audit = obs_opt.audit;
    if (!obs_opt.trace_file.empty() &&
        si == static_cast<std::size_t>(
                  obs_opt.trace_run < 0 ? 0 : obs_opt.trace_run) %
                  specs.size()) {
      obs.trace = true;
      obs.trace_capacity = obs_opt.trace_capacity;
    }
    tasks.push_back([&spec, obs] {
      SpecResult out;
      if (spec.kind == RunSpec::Kind::DebitCredit) {
        SystemConfig cfg = spec.cfg;
        cfg.obs = obs;
        out.r = run_debit_credit(cfg);
        out.cfg = cfg;
        out.names = debit_credit_partition_names();
      } else {
        workload::Trace trace;
        if (!spec.trace_file.empty()) {
          trace = workload::Trace::load_file(spec.trace_file);
        } else {
          sim::Rng rng(7);
          workload::SyntheticTraceConfig tc;
          tc.transactions = spec.trace_txns;
          trace = workload::generate_synthetic_trace(tc, rng);
        }
        // Trace runs use the trace config's partitions but keep the spec's
        // system knobs.
        SystemConfig cfg = make_trace_config(trace);
        cfg.nodes = spec.cfg.nodes;
        cfg.arrival_rate_per_node = spec.cfg.arrival_rate_per_node;
        cfg.coupling = spec.cfg.coupling;
        cfg.update = spec.cfg.update;
        cfg.routing = spec.cfg.routing;
        cfg.buffer_pages = spec.cfg.buffer_pages;
        cfg.pcl_read_optimization = spec.cfg.pcl_read_optimization;
        cfg.gem_read_authorizations = spec.cfg.gem_read_authorizations;
        cfg.comm.transport = spec.cfg.comm.transport;
        cfg.log_group_commit = spec.cfg.log_group_commit;
        cfg.warmup = spec.cfg.warmup;
        cfg.measure = spec.cfg.measure;
        cfg.seed = spec.cfg.seed;
        cfg.obs = obs;
        out.r = run_trace(cfg, trace);
        out.cfg = cfg;
        for (int f = 0; f < trace.num_files; ++f) {
          out.names.push_back("F" + std::to_string(f));
        }
      }
      return out;
    });
  }

  std::vector<SpecResult> results;
  try {
    results = SweepRunner(jobs).map(std::move(tasks));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  if (!obs_opt.no_json || !obs_opt.trace_file.empty()) {
    std::vector<BenchRun> bruns(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      bruns[i].config = results[i].cfg;
      bruns[i].result = results[i].r;
    }
    std::string caption = "gemsd_run:";
    for (const std::string& f : spec_files) caption += " " + f;
    if (!obs_opt.no_json) {
      write_bench_json("run", caption, obs_opt, bruns,
                       results.empty() ? std::vector<std::string>{}
                                       : results.front().names);
    }
    write_trace_file(obs_opt, bruns);
  }

  for (std::size_t i = 0; i < results.size(); ++i) {
    if (csv) {
      print_csv({results[i].r}, results[i].names);
    } else {
      print_table("gemsd_run: " + spec_files[i], {results[i].r},
                  results[i].names, full);
      std::printf("%s\n",
                  fingerprint_line("run", results[i].cfg).c_str());
    }
  }
  return 0;
}
