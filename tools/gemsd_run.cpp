// gemsd_run — run any experiment from a small INI-style spec, no C++
// required:
//
//   ./gemsd_run spec.ini [more-specs.ini ...] [--csv] [--full] [--jobs=N]
//              [--metrics-json=FILE] [--trace=FILE] [--trace-run=I]
//              [--trace-filter=RE] [--sample=S] [--slow-k=K] [--audit]
//              [--engine=sequential|parallel] [--engine-workers=N]
//              [--engine-profile[=FILE]] [--engine-profile-trace=FILE]
//              [--progress[=SECS]] [--timeseries[=FILE]]
//              [--timeseries-window=S] [--resources[=FILE]]
//
// A spec holds either a single configuration or a whole sweep (one [run]
// section per point — the format gemsd_bench --export-spec writes; see
// specs/*.ini). All runs from all files execute as one sweep on a worker
// pool (--jobs=N, default hardware_concurrency); results print in spec
// order. --metrics-json writes the structured results report (all metrics,
// telemetry samples, slowest transactions); --trace writes a Chrome
// trace-event file for one of the runs (pick with --trace-run).
// See src/core/config_file.hpp for the spec format.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <regex>
#include <string>
#include <vector>

#include "core/config_file.hpp"
#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "obs/trace.hpp"
#include "workload/trace_generator.hpp"

int main(int argc, char** argv) {
  using namespace gemsd;
  bool csv = false, full = false;
  int jobs = 0;
  BenchOptions obs_opt;  // carries the telemetry/export flags
  obs_opt.sample_every = 0.0;
  obs_opt.slow_k = 0;
  obs_opt.no_json = true;  // only write JSON when --metrics-json is given
  std::vector<std::string> spec_files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = std::atoi(argv[i] + 7);
    } else if (std::strncmp(argv[i], "--metrics-json=", 15) == 0) {
      obs_opt.metrics_json = argv[i] + 15;
      obs_opt.no_json = false;
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      obs_opt.trace_file = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--trace-run=", 12) == 0) {
      obs_opt.trace_run = std::atoi(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--trace-capacity=", 17) == 0) {
      obs_opt.trace_capacity =
          static_cast<std::size_t>(std::atoll(argv[i] + 17));
    } else if (std::strncmp(argv[i], "--trace-filter=", 15) == 0) {
      obs_opt.trace_filter = argv[i] + 15;
      try {
        (void)obs::trace_name_filter(obs_opt.trace_filter);
      } catch (const std::regex_error&) {
        std::fprintf(stderr, "error: --trace-filter is not a valid regex\n");
        return 1;
      }
    } else if (std::strncmp(argv[i], "--sample=", 9) == 0) {
      obs_opt.sample_every = std::atof(argv[i] + 9);
    } else if (std::strncmp(argv[i], "--slow-k=", 9) == 0) {
      obs_opt.slow_k = std::atoi(argv[i] + 9);
    } else if (std::strcmp(argv[i], "--audit") == 0) {
      obs_opt.audit = true;
    } else if (std::strcmp(argv[i], "--engine-profile") == 0) {
      obs_opt.engine_profile = true;
    } else if (std::strncmp(argv[i], "--engine-profile=", 17) == 0) {
      obs_opt.engine_profile = true;
      obs_opt.engine_profile_file = argv[i] + 17;
    } else if (std::strncmp(argv[i], "--engine-profile-trace=", 23) == 0) {
      obs_opt.engine_profile = true;
      obs_opt.engine_profile_trace = argv[i] + 23;
    } else if (std::strcmp(argv[i], "--timeseries") == 0) {
      obs_opt.timeseries = true;
    } else if (std::strncmp(argv[i], "--timeseries=", 13) == 0) {
      obs_opt.timeseries = true;
      obs_opt.timeseries_file = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--timeseries-window=", 20) == 0) {
      obs_opt.timeseries = true;
      obs_opt.timeseries_window = std::atof(argv[i] + 20);
      if (obs_opt.timeseries_window <= 0) {
        std::fprintf(stderr, "error: --timeseries-window must be > 0\n");
        return 1;
      }
    } else if (std::strcmp(argv[i], "--resources") == 0) {
      obs_opt.resources = true;
    } else if (std::strncmp(argv[i], "--resources=", 12) == 0) {
      obs_opt.resources = true;
      obs_opt.resources_file = argv[i] + 12;
    } else if (std::strcmp(argv[i], "--progress") == 0) {
      obs_opt.progress_every_s = 10.0;
    } else if (std::strncmp(argv[i], "--progress=", 11) == 0) {
      obs_opt.progress_every_s = std::atof(argv[i] + 11);
      if (obs_opt.progress_every_s <= 0) {
        std::fprintf(stderr, "error: --progress period must be > 0\n");
        return 1;
      }
    } else if (std::strncmp(argv[i], "--engine=", 9) == 0) {
      const char* v = argv[i] + 9;
      if (std::strcmp(v, "sequential") == 0) {
        obs_opt.engine = sim::EngineKind::Sequential;
      } else if (std::strcmp(v, "parallel") == 0) {
        obs_opt.engine = sim::EngineKind::Parallel;
      } else {
        std::fprintf(stderr,
                     "error: --engine must be sequential or parallel\n");
        return 1;
      }
    } else if (std::strncmp(argv[i], "--engine-workers=", 17) == 0) {
      obs_opt.engine_workers = std::atoi(argv[i] + 17);
    } else {
      spec_files.push_back(argv[i]);
    }
  }
  if (spec_files.empty()) {
    std::fprintf(stderr,
                 "usage: gemsd_run <spec.ini> [more-specs.ini ...] "
                 "[--csv] [--full] [--jobs=N] [--metrics-json=FILE] "
                 "[--trace=FILE] [--trace-run=I] [--trace-filter=RE] "
                 "[--sample=S] [--slow-k=K] [--audit] "
                 "[--engine=sequential|parallel] [--engine-workers=N] "
                 "[--engine-profile[=FILE]] [--engine-profile-trace=FILE] "
                 "[--progress[=SECS]] [--timeseries[=FILE]] "
                 "[--timeseries-window=S] [--resources[=FILE]]\n");
    return 1;
  }

  // Flatten all spec files into one run list, remembering where each run
  // came from for the report headers.
  struct Job {
    RunSpec spec;
    std::string title;  ///< "<file>" or "<file> [run I]"
  };
  std::vector<Job> jobs_list;
  try {
    for (const std::string& f : spec_files) {
      const SpecDoc doc = parse_spec_doc_file(f);
      for (std::size_t r = 0; r < doc.runs.size(); ++r) {
        Job j;
        j.spec = doc.runs[r];
        j.title = doc.runs.size() == 1
                      ? f
                      : f + " [run " + std::to_string(r + 1) + "/" +
                            std::to_string(doc.runs.size()) + "]";
        jobs_list.push_back(std::move(j));
      }
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  // Traces are shared across the runs that use the same source: generated
  // (or loaded) once, outside the worker pool.
  std::map<std::pair<std::string, std::size_t>,
           std::shared_ptr<const workload::Trace>>
      traces;
  for (const Job& j : jobs_list) {
    if (j.spec.kind != RunSpec::Kind::Trace) continue;
    const auto key = std::make_pair(j.spec.trace_file, j.spec.trace_txns);
    if (traces.count(key)) continue;
    try {
      if (!j.spec.trace_file.empty()) {
        traces[key] = std::make_shared<const workload::Trace>(
            workload::Trace::load_file(j.spec.trace_file));
      } else {
        sim::Rng rng(7);
        workload::SyntheticTraceConfig tc;
        tc.transactions = j.spec.trace_txns;
        traces[key] = std::make_shared<const workload::Trace>(
            workload::generate_synthetic_trace(tc, rng));
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }

  struct SpecResult {
    RunResult r;
    SystemConfig cfg;
    std::vector<std::string> names;
  };
  std::vector<std::function<SpecResult()>> tasks;
  for (std::size_t si = 0; si < jobs_list.size(); ++si) {
    const RunSpec& spec = jobs_list[si].spec;
    SystemConfig::ObsConfig obs;
    obs.sample_every = obs_opt.sample_every;
    obs.slow_k = obs_opt.slow_k;
    obs.audit = obs_opt.audit;
    obs.progress_every_s = obs_opt.progress_every_s;
    const std::size_t picked =
        static_cast<std::size_t>(
            obs_opt.trace_run < 0 ? 0 : obs_opt.trace_run) %
        jobs_list.size();
    if (!obs_opt.trace_file.empty() && si == picked) {
      obs.trace = true;
      obs.trace_capacity = obs_opt.trace_capacity;
      obs.trace_filter = obs_opt.trace_filter;
    }
    if (obs_opt.engine_profile && si == picked) {
      obs.engine_profile = true;
    }
    if (obs_opt.timeseries && si == picked) {
      obs.timeseries = true;
      obs.timeseries_window = obs_opt.timeseries_window;
    }
    if (obs_opt.resources && si == picked) {
      obs.resources = true;
    }
    SystemConfig::EngineConfig eng;
    eng.kind = obs_opt.engine;
    eng.workers = obs_opt.engine_workers;
    std::shared_ptr<const workload::Trace> trace;
    if (spec.kind == RunSpec::Kind::Trace) {
      trace = traces.at(std::make_pair(spec.trace_file, spec.trace_txns));
    }
    tasks.push_back([&spec, obs, eng, trace] {
      SpecResult out;
      if (spec.kind == RunSpec::Kind::DebitCredit) {
        SystemConfig cfg = spec.cfg;
        cfg.obs = obs;
        cfg.engine = eng;
        out.r = run_debit_credit(cfg);
        out.cfg = cfg;
        out.names = debit_credit_partition_names();
      } else {
        // Trace runs take their partition layout from the trace; the spec's
        // system keys are re-applied on top of the trace defaults, exactly
        // how gemsd_bench builds the in-registry config.
        SystemConfig cfg = make_trace_config(*trace);
        apply_spec_keys(cfg, spec.keys);
        cfg.obs = obs;
        cfg.engine = eng;
        out.r = run_trace(cfg, *trace);
        out.cfg = cfg;
        for (int f = 0; f < trace->num_files; ++f) {
          out.names.push_back("F" + std::to_string(f));
        }
      }
      return out;
    });
  }

  std::vector<SpecResult> results;
  try {
    results = SweepRunner(jobs).map(std::move(tasks));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  if (!obs_opt.no_json || !obs_opt.trace_file.empty() ||
      obs_opt.engine_profile || obs_opt.timeseries || obs_opt.resources) {
    std::vector<BenchRun> bruns(results.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      bruns[i].config = results[i].cfg;
      bruns[i].result = results[i].r;
    }
    std::string caption = "gemsd_run:";
    for (const std::string& f : spec_files) caption += " " + f;
    if (!obs_opt.no_json) {
      write_bench_json("run", caption, obs_opt, bruns,
                       results.empty() ? std::vector<std::string>{}
                                       : results.front().names);
    }
    write_trace_file(obs_opt, bruns);
    write_engprof_files("run", obs_opt, bruns);
    write_timeseries_file("run", obs_opt, bruns);
    write_resources_file("run", obs_opt, bruns);
  }

  for (std::size_t i = 0; i < results.size(); ++i) {
    if (csv) {
      print_csv({results[i].r}, results[i].names);
    } else {
      print_table("gemsd_run: " + jobs_list[i].title, {results[i].r},
                  results[i].names, full);
      std::printf("%s\n",
                  fingerprint_line("run", results[i].cfg).c_str());
    }
  }
  return 0;
}
