// gemsd_run — run any experiment from a small INI-style spec, no C++
// required:
//
//   ./gemsd_run spec.ini [--csv] [--full]
//
// See src/core/config_file.hpp for the spec format, and specs/*.ini for
// ready-made examples.
#include <cstdio>
#include <cstring>

#include "core/config_file.hpp"
#include "core/experiment.hpp"
#include "workload/trace_generator.hpp"

int main(int argc, char** argv) {
  using namespace gemsd;
  if (argc < 2) {
    std::fprintf(stderr, "usage: gemsd_run <spec.ini> [--csv] [--full]\n");
    return 1;
  }
  bool csv = false, full = false;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) csv = true;
    if (std::strcmp(argv[i], "--full") == 0) full = true;
  }

  RunSpec spec;
  try {
    spec = parse_run_spec_file(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  RunResult r;
  std::vector<std::string> names;
  if (spec.kind == RunSpec::Kind::DebitCredit) {
    r = run_debit_credit(spec.cfg);
    names = debit_credit_partition_names();
  } else {
    workload::Trace trace;
    if (!spec.trace_file.empty()) {
      trace = workload::Trace::load_file(spec.trace_file);
    } else {
      sim::Rng rng(7);
      workload::SyntheticTraceConfig tc;
      tc.transactions = spec.trace_txns;
      trace = workload::generate_synthetic_trace(tc, rng);
    }
    // Trace runs use the trace config's partitions but keep the spec's
    // system knobs.
    SystemConfig cfg = make_trace_config(trace);
    cfg.nodes = spec.cfg.nodes;
    cfg.arrival_rate_per_node = spec.cfg.arrival_rate_per_node;
    cfg.coupling = spec.cfg.coupling;
    cfg.update = spec.cfg.update;
    cfg.routing = spec.cfg.routing;
    cfg.buffer_pages = spec.cfg.buffer_pages;
    cfg.pcl_read_optimization = spec.cfg.pcl_read_optimization;
    cfg.gem_read_authorizations = spec.cfg.gem_read_authorizations;
    cfg.comm.transport = spec.cfg.comm.transport;
    cfg.log_group_commit = spec.cfg.log_group_commit;
    cfg.warmup = spec.cfg.warmup;
    cfg.measure = spec.cfg.measure;
    cfg.seed = spec.cfg.seed;
    r = run_trace(cfg, trace);
    for (int f = 0; f < trace.num_files; ++f) {
      names.push_back("F" + std::to_string(f));
    }
  }

  if (csv) {
    print_csv({r}, names);
  } else {
    print_table(std::string("gemsd_run: ") + argv[1], {r}, names, full);
  }
  return 0;
}
