// gemsd_run — run any experiment from a small INI-style spec, no C++
// required:
//
//   ./gemsd_run spec.ini [more-specs.ini ...] [--csv] [--full] [--jobs=N]
//
// Multiple specs are executed as one sweep on a worker pool (--jobs=N,
// default hardware_concurrency); results print in command-line order.
// See src/core/config_file.hpp for the spec format, and specs/*.ini for
// ready-made examples.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "core/config_file.hpp"
#include "core/experiment.hpp"
#include "core/sweep.hpp"
#include "workload/trace_generator.hpp"

int main(int argc, char** argv) {
  using namespace gemsd;
  bool csv = false, full = false;
  int jobs = 0;
  std::vector<std::string> spec_files;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) {
      csv = true;
    } else if (std::strcmp(argv[i], "--full") == 0) {
      full = true;
    } else if (std::strncmp(argv[i], "--jobs=", 7) == 0) {
      jobs = std::atoi(argv[i] + 7);
    } else {
      spec_files.push_back(argv[i]);
    }
  }
  if (spec_files.empty()) {
    std::fprintf(stderr,
                 "usage: gemsd_run <spec.ini> [more-specs.ini ...] "
                 "[--csv] [--full] [--jobs=N]\n");
    return 1;
  }

  std::vector<RunSpec> specs(spec_files.size());
  for (std::size_t i = 0; i < spec_files.size(); ++i) {
    try {
      specs[i] = parse_run_spec_file(spec_files[i]);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }

  struct SpecResult {
    RunResult r;
    std::vector<std::string> names;
  };
  std::vector<std::function<SpecResult()>> tasks;
  for (const RunSpec& spec : specs) {
    tasks.push_back([&spec] {
      SpecResult out;
      if (spec.kind == RunSpec::Kind::DebitCredit) {
        out.r = run_debit_credit(spec.cfg);
        out.names = debit_credit_partition_names();
      } else {
        workload::Trace trace;
        if (!spec.trace_file.empty()) {
          trace = workload::Trace::load_file(spec.trace_file);
        } else {
          sim::Rng rng(7);
          workload::SyntheticTraceConfig tc;
          tc.transactions = spec.trace_txns;
          trace = workload::generate_synthetic_trace(tc, rng);
        }
        // Trace runs use the trace config's partitions but keep the spec's
        // system knobs.
        SystemConfig cfg = make_trace_config(trace);
        cfg.nodes = spec.cfg.nodes;
        cfg.arrival_rate_per_node = spec.cfg.arrival_rate_per_node;
        cfg.coupling = spec.cfg.coupling;
        cfg.update = spec.cfg.update;
        cfg.routing = spec.cfg.routing;
        cfg.buffer_pages = spec.cfg.buffer_pages;
        cfg.pcl_read_optimization = spec.cfg.pcl_read_optimization;
        cfg.gem_read_authorizations = spec.cfg.gem_read_authorizations;
        cfg.comm.transport = spec.cfg.comm.transport;
        cfg.log_group_commit = spec.cfg.log_group_commit;
        cfg.warmup = spec.cfg.warmup;
        cfg.measure = spec.cfg.measure;
        cfg.seed = spec.cfg.seed;
        out.r = run_trace(cfg, trace);
        for (int f = 0; f < trace.num_files; ++f) {
          out.names.push_back("F" + std::to_string(f));
        }
      }
      return out;
    });
  }

  std::vector<SpecResult> results;
  try {
    results = SweepRunner(jobs).map(std::move(tasks));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  for (std::size_t i = 0; i < results.size(); ++i) {
    if (csv) {
      print_csv({results[i].r}, results[i].names);
    } else {
      print_table("gemsd_run: " + spec_files[i], {results[i].r},
                  results[i].names, full);
    }
  }
  return 0;
}
