// gemsd_bench — the one bench driver. Every paper figure (4.1-4.7, Table
// 4.1) and every ablation lives in the compiled-in scenario registry
// (src/core/scenario_registry.cpp); this binary lists, runs, and exports
// them:
//
//   ./gemsd_bench --list [--filter=REGEX]
//   ./gemsd_bench --scenario=NAME [bench flags]
//   ./gemsd_bench --filter=REGEX  [bench flags]
//   ./gemsd_bench --export-spec=DIR [--filter=REGEX] [bench flags]
//
// Bench flags are the shared set every retired bench_* main took (--quick,
// --measure=, --warmup=, --max-nodes=, --jobs=, --seed=, --full, --csv,
// --sample=, --slow-k=, --metrics-json=, --no-json, --trace=, --trace-run=,
// --trace-capacity=, --audit). Output is unchanged: the same tables/CSV on
// stdout and the same gemsd.results.v1 JSON (BENCH_<name>.json, to
// --out-dir=DIR when given, else the working directory).
//
// --export-spec writes one specs/<name>.ini per exportable scenario in the
// selection; gemsd_run executes those to bit-identical metrics (the export
// self-verifies the round trip and fails loudly on drift).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <regex>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "core/scenario.hpp"

namespace {

void usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: gemsd_bench --list [--filter=REGEX]\n"
      "       gemsd_bench --scenario=NAME [bench flags]\n"
      "       gemsd_bench --filter=REGEX  [bench flags]\n"
      "       gemsd_bench --export-spec=DIR [--filter=REGEX] [bench flags]\n"
      "\n"
      "  --list             list registered scenarios (name, runs, summary)\n"
      "  --scenario=NAME    run one scenario by exact name\n"
      "  --filter=REGEX     select scenarios whose name matches REGEX\n"
      "  --export-spec=DIR  write DIR/<name>.ini for the selected exportable\n"
      "                     scenarios (gemsd_run input, round-trip verified)\n"
      "  --out-dir=DIR      directory for BENCH_<name>.json results files\n"
      "%s",
      gemsd::bench_usage().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gemsd;

  bool list = false;
  std::string scenario_name, filter, export_dir, out_dir;
  std::vector<std::string> rest;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--list") {
      list = true;
    } else if (a.rfind("--scenario=", 0) == 0) {
      scenario_name = a.substr(11);
    } else if (a.rfind("--filter=", 0) == 0) {
      filter = a.substr(9);
    } else if (a.rfind("--export-spec=", 0) == 0) {
      export_dir = a.substr(14);
    } else if (a.rfind("--out-dir=", 0) == 0) {
      out_dir = a.substr(10);
    } else if (a == "--help" || a == "-h") {
      usage(stdout);
      return 0;
    } else {
      rest.push_back(a);
    }
  }

  BenchOptions opt;
  if (const std::string err = try_parse_bench_args(rest, opt); !err.empty()) {
    std::fprintf(stderr, "gemsd_bench: %s\n\n", err.c_str());
    usage(stderr);
    return 2;
  }

  // Resolve the selection: one exact name, a regex, or (for --list and
  // --export-spec) the whole registry.
  std::vector<const Scenario*> sel;
  if (!scenario_name.empty()) {
    const Scenario* sc = find_scenario(scenario_name);
    if (!sc) {
      std::fprintf(stderr,
                   "gemsd_bench: unknown scenario '%s' (see --list)\n",
                   scenario_name.c_str());
      return 2;
    }
    sel.push_back(sc);
  } else {
    std::regex re;
    if (!filter.empty()) {
      try {
        re = std::regex(filter);
      } catch (const std::regex_error& e) {
        std::fprintf(stderr, "gemsd_bench: bad --filter regex: %s\n",
                     e.what());
        return 2;
      }
    }
    for (const Scenario& sc : scenario_registry()) {
      if (filter.empty() || std::regex_search(sc.name, re)) {
        sel.push_back(&sc);
      }
    }
    if (sel.empty()) {
      std::fprintf(stderr, "gemsd_bench: no scenario matches '%s'\n",
                   filter.c_str());
      return 2;
    }
  }

  if (list) {
    for (const Scenario* sc : sel) {
      const std::size_t n = scenario_cell_count(*sc, opt);
      std::printf("%-24s %4zu run%s  %s\n", sc->name.c_str(), n,
                  n == 1 ? " " : "s", sc->doc.c_str());
    }
    return 0;
  }

  if (!export_dir.empty()) {
    int written = 0;
    for (const Scenario* sc : sel) {
      if (!sc->exportable) {
        std::fprintf(stderr, "gemsd_bench: skipping %s (not expressible "
                             "as a run spec)\n",
                     sc->name.c_str());
        continue;
      }
      std::string text;
      try {
        text = export_scenario_spec(*sc, opt);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "gemsd_bench: %s\n", e.what());
        return 1;
      }
      const std::string path = export_dir + "/" + sc->name + ".ini";
      std::ofstream out(path);
      out << text;
      if (!out) {
        std::fprintf(stderr, "gemsd_bench: cannot write %s\n", path.c_str());
        return 1;
      }
      std::printf("wrote %s\n", path.c_str());
      ++written;
    }
    return written ? 0 : 1;
  }

  if (scenario_name.empty() && filter.empty()) {
    std::fprintf(stderr,
                 "gemsd_bench: nothing selected (use --list, "
                 "--scenario=NAME, or --filter=REGEX)\n\n");
    usage(stderr);
    return 2;
  }
  if (sel.size() > 1 && !opt.metrics_json.empty()) {
    std::fprintf(stderr,
                 "gemsd_bench: --metrics-json only works with a single "
                 "scenario (results files would overwrite each other); "
                 "use --out-dir=DIR\n");
    return 2;
  }

  for (std::size_t i = 0; i < sel.size(); ++i) {
    const Scenario& sc = *sel[i];
    if (sel.size() > 1) {
      std::printf("%s=== %s ===\n", i ? "\n" : "", sc.name.c_str());
    }
    try {
      const ScenarioResult res = run_scenario(sc, opt);
      emit_scenario(sc, opt, res, out_dir);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "gemsd_bench: %s: %s\n", sc.name.c_str(),
                   e.what());
      return 1;
    }
  }
  return 0;
}
