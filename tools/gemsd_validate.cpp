// gemsd_validate — validate a JSON document against a JSON-Schema-subset
// file (see src/obs/json.hpp for the supported keywords):
//
//   ./gemsd_validate <schema.json> <doc.json> [more-docs.json ...]
//
// Exits 0 when every document parses and validates, 1 otherwise. Used by CI
// to check the bench --metrics-json and --trace outputs against
// schemas/results.schema.json and schemas/trace.schema.json.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gemsd;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: gemsd_validate <schema.json> <doc.json> "
                 "[more-docs.json ...]\n");
    return 1;
  }

  std::string text, error;
  obs::JsonValue schema;
  if (!read_file(argv[1], text)) return 1;
  if (!obs::json_parse(text, schema, error)) {
    std::fprintf(stderr, "error: %s: %s\n", argv[1], error.c_str());
    return 1;
  }

  bool ok = true;
  for (int i = 2; i < argc; ++i) {
    obs::JsonValue doc;
    if (!read_file(argv[i], text)) {
      ok = false;
      continue;
    }
    if (!obs::json_parse(text, doc, error)) {
      std::fprintf(stderr, "error: %s: %s\n", argv[i], error.c_str());
      ok = false;
      continue;
    }
    std::vector<std::string> problems;
    if (obs::json_schema_validate(schema, doc, problems)) {
      std::printf("%s: OK\n", argv[i]);
    } else {
      ok = false;
      std::printf("%s: INVALID\n", argv[i]);
      for (const std::string& p : problems) {
        std::printf("  %s\n", p.c_str());
      }
    }
  }
  return ok ? 0 : 1;
}
