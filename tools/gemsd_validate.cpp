// gemsd_validate — validate JSON documents against a JSON-Schema-subset
// file (see src/obs/json.hpp for the supported keywords):
//
//   ./gemsd_validate <schema.json> <doc.json|dir> [more ...]
//   ./gemsd_validate --schemas=<dir> <doc.json|dir> [more ...]
//
// The first form validates every document against one schema. The second
// builds a registry from <dir>/*.schema.json, reads each document's schema
// tag ("schema" at the top level, or "otherData.schema" for Chrome traces)
// and validates it against the matching schema; a document whose tag
// matches no known schema is a failure — a results directory must not
// accumulate files nothing can check.
//
// Directory arguments expand to their *.json files (sorted, non-recursive).
// Every document is checked — a failure does not stop the run — and a
// summary line reports the total. Exits 0 when every document parses and
// validates, 1 otherwise. Used by CI to check the bench --metrics-json and
// --trace outputs against schemas/results.schema.json and
// schemas/trace.schema.json.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

/// A directory argument stands for its *.json files, in sorted order so the
/// output (and any golden diff of it) is stable across filesystems.
std::vector<std::string> expand(const std::string& arg) {
  std::error_code ec;
  if (!std::filesystem::is_directory(arg, ec)) return {arg};
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(arg, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::fprintf(stderr, "warning: no *.json files in %s\n", arg.c_str());
  }
  return files;
}

/// Schema tag declared by a schema file: properties.schema.enum[0], or —
/// Chrome traces nest theirs — properties.otherData.properties.schema.enum[0].
std::string schema_tag_of_schema(const gemsd::obs::JsonValue& schema) {
  using gemsd::obs::JsonValue;
  const auto enum_head = [](const JsonValue* prop) -> std::string {
    if (!prop) return "";
    const JsonValue* e = prop->find("enum");
    if (e && e->is_array() && !e->arr.empty() && e->arr[0].is_string()) {
      return e->arr[0].str;
    }
    return "";
  };
  if (const JsonValue* props = schema.find("properties")) {
    if (std::string tag = enum_head(props->find("schema")); !tag.empty()) {
      return tag;
    }
    if (const JsonValue* od = props->find("otherData")) {
      if (const JsonValue* odp = od->find("properties")) {
        return enum_head(odp->find("schema"));
      }
    }
  }
  return "";
}

/// Schema tag carried by a document: "schema" at the top level, or
/// "otherData.schema".
std::string schema_tag_of_doc(const gemsd::obs::JsonValue& doc) {
  using gemsd::obs::JsonValue;
  if (const JsonValue* s = doc.find("schema"); s && s->is_string()) {
    return s->str;
  }
  if (const JsonValue* od = doc.find("otherData")) {
    if (const JsonValue* s = od->find("schema"); s && s->is_string()) {
      return s->str;
    }
  }
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gemsd;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: gemsd_validate <schema.json> <doc.json|dir> "
                 "[more ...]\n"
                 "       gemsd_validate --schemas=<dir> <doc.json|dir> "
                 "[more ...]\n");
    return 1;
  }

  std::string text, error;
  // tag -> {schema, source path}; auto mode fills several, the single-schema
  // form exactly one under the "" catch-all tag.
  std::map<std::string, std::pair<obs::JsonValue, std::string>> registry;
  const bool auto_mode = std::strncmp(argv[1], "--schemas=", 10) == 0;
  if (auto_mode) {
    const std::string dir = argv[1] + 10;
    std::error_code ec;
    std::vector<std::string> schema_files;
    for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
      const std::string p = entry.path().string();
      if (entry.is_regular_file() &&
          p.size() > 12 && p.rfind(".schema.json") == p.size() - 12) {
        schema_files.push_back(p);
      }
    }
    std::sort(schema_files.begin(), schema_files.end());
    for (const std::string& f : schema_files) {
      obs::JsonValue schema;
      if (!read_file(f, text)) return 1;
      if (!obs::json_parse(text, schema, error)) {
        std::fprintf(stderr, "error: %s: %s\n", f.c_str(), error.c_str());
        return 1;
      }
      const std::string tag = schema_tag_of_schema(schema);
      if (tag.empty()) {
        std::fprintf(stderr, "warning: %s declares no schema tag\n",
                     f.c_str());
        continue;
      }
      registry[tag] = {std::move(schema), f};
    }
    if (registry.empty()) {
      std::fprintf(stderr, "error: no *.schema.json with a schema tag in %s\n",
                   dir.c_str());
      return 1;
    }
  } else {
    obs::JsonValue schema;
    if (!read_file(argv[1], text)) return 1;
    if (!obs::json_parse(text, schema, error)) {
      std::fprintf(stderr, "error: %s: %s\n", argv[1], error.c_str());
      return 1;
    }
    registry[""] = {std::move(schema), argv[1]};
  }

  std::vector<std::string> docs;
  for (int i = 2; i < argc; ++i) {
    for (std::string& f : expand(argv[i])) docs.push_back(std::move(f));
  }

  std::vector<std::string> failures;
  for (const std::string& path : docs) {
    obs::JsonValue doc;
    if (!read_file(path, text)) {
      failures.push_back(path);
      continue;
    }
    if (!obs::json_parse(text, doc, error)) {
      std::fprintf(stderr, "error: %s: %s\n", path.c_str(), error.c_str());
      failures.push_back(path);
      continue;
    }
    const obs::JsonValue* schema = nullptr;
    if (auto_mode) {
      const std::string tag = schema_tag_of_doc(doc);
      const auto it = registry.find(tag);
      if (it == registry.end()) {
        failures.push_back(path);
        std::printf("%s: INVALID\n", path.c_str());
        if (tag.empty()) {
          std::printf("  no schema tag\n");
        } else {
          std::printf("  unknown schema '%s'\n", tag.c_str());
        }
        continue;
      }
      schema = &it->second.first;
    } else {
      schema = &registry.begin()->second.first;
    }
    std::vector<std::string> problems;
    if (obs::json_schema_validate(*schema, doc, problems)) {
      std::printf("%s: OK\n", path.c_str());
    } else {
      failures.push_back(path);
      std::printf("%s: INVALID\n", path.c_str());
      for (const std::string& p : problems) {
        std::printf("  %s\n", p.c_str());
      }
    }
  }

  std::printf("%zu/%zu documents valid\n", docs.size() - failures.size(),
              docs.size());
  for (const std::string& f : failures) {
    std::printf("FAILED: %s\n", f.c_str());
  }
  return failures.empty() && !docs.empty() ? 0 : 1;
}
