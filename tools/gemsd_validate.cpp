// gemsd_validate — validate JSON documents against a JSON-Schema-subset
// file (see src/obs/json.hpp for the supported keywords):
//
//   ./gemsd_validate <schema.json> <doc.json|dir> [more ...]
//
// Directory arguments expand to their *.json files (sorted, non-recursive).
// Every document is checked — a failure does not stop the run — and a
// summary line reports the total. Exits 0 when every document parses and
// validates, 1 otherwise. Used by CI to check the bench --metrics-json and
// --trace outputs against schemas/results.schema.json and
// schemas/trace.schema.json.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace {

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "error: cannot open %s\n", path.c_str());
    return false;
  }
  std::ostringstream ss;
  ss << in.rdbuf();
  out = ss.str();
  return true;
}

/// A directory argument stands for its *.json files, in sorted order so the
/// output (and any golden diff of it) is stable across filesystems.
std::vector<std::string> expand(const std::string& arg) {
  std::error_code ec;
  if (!std::filesystem::is_directory(arg, ec)) return {arg};
  std::vector<std::string> files;
  for (const auto& entry : std::filesystem::directory_iterator(arg, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".json") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::fprintf(stderr, "warning: no *.json files in %s\n", arg.c_str());
  }
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gemsd;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: gemsd_validate <schema.json> <doc.json|dir> "
                 "[more ...]\n");
    return 1;
  }

  std::string text, error;
  obs::JsonValue schema;
  if (!read_file(argv[1], text)) return 1;
  if (!obs::json_parse(text, schema, error)) {
    std::fprintf(stderr, "error: %s: %s\n", argv[1], error.c_str());
    return 1;
  }

  std::vector<std::string> docs;
  for (int i = 2; i < argc; ++i) {
    for (std::string& f : expand(argv[i])) docs.push_back(std::move(f));
  }

  std::vector<std::string> failures;
  for (const std::string& path : docs) {
    obs::JsonValue doc;
    if (!read_file(path, text)) {
      failures.push_back(path);
      continue;
    }
    if (!obs::json_parse(text, doc, error)) {
      std::fprintf(stderr, "error: %s: %s\n", path.c_str(), error.c_str());
      failures.push_back(path);
      continue;
    }
    std::vector<std::string> problems;
    if (obs::json_schema_validate(schema, doc, problems)) {
      std::printf("%s: OK\n", path.c_str());
    } else {
      failures.push_back(path);
      std::printf("%s: INVALID\n", path.c_str());
      for (const std::string& p : problems) {
        std::printf("  %s\n", p.c_str());
      }
    }
  }

  std::printf("%zu/%zu documents valid\n", docs.size() - failures.size(),
              docs.size());
  for (const std::string& f : failures) {
    std::printf("FAILED: %s\n", f.c_str());
  }
  return failures.empty() && !docs.empty() ? 0 : 1;
}
