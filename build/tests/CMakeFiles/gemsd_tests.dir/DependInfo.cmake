
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/buffer_manager_test.cpp" "tests/CMakeFiles/gemsd_tests.dir/buffer_manager_test.cpp.o" "gcc" "tests/CMakeFiles/gemsd_tests.dir/buffer_manager_test.cpp.o.d"
  "/root/repo/tests/config_file_test.cpp" "tests/CMakeFiles/gemsd_tests.dir/config_file_test.cpp.o" "gcc" "tests/CMakeFiles/gemsd_tests.dir/config_file_test.cpp.o.d"
  "/root/repo/tests/failure_test.cpp" "tests/CMakeFiles/gemsd_tests.dir/failure_test.cpp.o" "gcc" "tests/CMakeFiles/gemsd_tests.dir/failure_test.cpp.o.d"
  "/root/repo/tests/gem_usage_test.cpp" "tests/CMakeFiles/gemsd_tests.dir/gem_usage_test.cpp.o" "gcc" "tests/CMakeFiles/gemsd_tests.dir/gem_usage_test.cpp.o.d"
  "/root/repo/tests/lock_engine_test.cpp" "tests/CMakeFiles/gemsd_tests.dir/lock_engine_test.cpp.o" "gcc" "tests/CMakeFiles/gemsd_tests.dir/lock_engine_test.cpp.o.d"
  "/root/repo/tests/lock_table_test.cpp" "tests/CMakeFiles/gemsd_tests.dir/lock_table_test.cpp.o" "gcc" "tests/CMakeFiles/gemsd_tests.dir/lock_table_test.cpp.o.d"
  "/root/repo/tests/log_manager_test.cpp" "tests/CMakeFiles/gemsd_tests.dir/log_manager_test.cpp.o" "gcc" "tests/CMakeFiles/gemsd_tests.dir/log_manager_test.cpp.o.d"
  "/root/repo/tests/lru_test.cpp" "tests/CMakeFiles/gemsd_tests.dir/lru_test.cpp.o" "gcc" "tests/CMakeFiles/gemsd_tests.dir/lru_test.cpp.o.d"
  "/root/repo/tests/misc_test.cpp" "tests/CMakeFiles/gemsd_tests.dir/misc_test.cpp.o" "gcc" "tests/CMakeFiles/gemsd_tests.dir/misc_test.cpp.o.d"
  "/root/repo/tests/network_test.cpp" "tests/CMakeFiles/gemsd_tests.dir/network_test.cpp.o" "gcc" "tests/CMakeFiles/gemsd_tests.dir/network_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/gemsd_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/gemsd_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/protocol_test.cpp" "tests/CMakeFiles/gemsd_tests.dir/protocol_test.cpp.o" "gcc" "tests/CMakeFiles/gemsd_tests.dir/protocol_test.cpp.o.d"
  "/root/repo/tests/queueing_test.cpp" "tests/CMakeFiles/gemsd_tests.dir/queueing_test.cpp.o" "gcc" "tests/CMakeFiles/gemsd_tests.dir/queueing_test.cpp.o.d"
  "/root/repo/tests/regression_test.cpp" "tests/CMakeFiles/gemsd_tests.dir/regression_test.cpp.o" "gcc" "tests/CMakeFiles/gemsd_tests.dir/regression_test.cpp.o.d"
  "/root/repo/tests/sim_kernel_test.cpp" "tests/CMakeFiles/gemsd_tests.dir/sim_kernel_test.cpp.o" "gcc" "tests/CMakeFiles/gemsd_tests.dir/sim_kernel_test.cpp.o.d"
  "/root/repo/tests/storage_test.cpp" "tests/CMakeFiles/gemsd_tests.dir/storage_test.cpp.o" "gcc" "tests/CMakeFiles/gemsd_tests.dir/storage_test.cpp.o.d"
  "/root/repo/tests/stress_test.cpp" "tests/CMakeFiles/gemsd_tests.dir/stress_test.cpp.o" "gcc" "tests/CMakeFiles/gemsd_tests.dir/stress_test.cpp.o.d"
  "/root/repo/tests/synthetic_workload_test.cpp" "tests/CMakeFiles/gemsd_tests.dir/synthetic_workload_test.cpp.o" "gcc" "tests/CMakeFiles/gemsd_tests.dir/synthetic_workload_test.cpp.o.d"
  "/root/repo/tests/system_test.cpp" "tests/CMakeFiles/gemsd_tests.dir/system_test.cpp.o" "gcc" "tests/CMakeFiles/gemsd_tests.dir/system_test.cpp.o.d"
  "/root/repo/tests/trace_generator_test.cpp" "tests/CMakeFiles/gemsd_tests.dir/trace_generator_test.cpp.o" "gcc" "tests/CMakeFiles/gemsd_tests.dir/trace_generator_test.cpp.o.d"
  "/root/repo/tests/update_lock_test.cpp" "tests/CMakeFiles/gemsd_tests.dir/update_lock_test.cpp.o" "gcc" "tests/CMakeFiles/gemsd_tests.dir/update_lock_test.cpp.o.d"
  "/root/repo/tests/workload_test.cpp" "tests/CMakeFiles/gemsd_tests.dir/workload_test.cpp.o" "gcc" "tests/CMakeFiles/gemsd_tests.dir/workload_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/gemsd.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
