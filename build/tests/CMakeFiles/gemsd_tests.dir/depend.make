# Empty dependencies file for gemsd_tests.
# This may be replaced when dependencies are built.
