file(REMOVE_RECURSE
  "CMakeFiles/debit_credit_cluster.dir/debit_credit_cluster.cpp.o"
  "CMakeFiles/debit_credit_cluster.dir/debit_credit_cluster.cpp.o.d"
  "debit_credit_cluster"
  "debit_credit_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/debit_credit_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
