# Empty dependencies file for debit_credit_cluster.
# This may be replaced when dependencies are built.
