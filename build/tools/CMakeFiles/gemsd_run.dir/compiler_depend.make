# Empty compiler generated dependencies file for gemsd_run.
# This may be replaced when dependencies are built.
