file(REMOVE_RECURSE
  "CMakeFiles/gemsd_run.dir/gemsd_run.cpp.o"
  "CMakeFiles/gemsd_run.dir/gemsd_run.cpp.o.d"
  "gemsd_run"
  "gemsd_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gemsd_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
