
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cc/gem_lock_protocol.cpp" "src/CMakeFiles/gemsd.dir/cc/gem_lock_protocol.cpp.o" "gcc" "src/CMakeFiles/gemsd.dir/cc/gem_lock_protocol.cpp.o.d"
  "/root/repo/src/cc/lock_engine_protocol.cpp" "src/CMakeFiles/gemsd.dir/cc/lock_engine_protocol.cpp.o" "gcc" "src/CMakeFiles/gemsd.dir/cc/lock_engine_protocol.cpp.o.d"
  "/root/repo/src/cc/lock_table.cpp" "src/CMakeFiles/gemsd.dir/cc/lock_table.cpp.o" "gcc" "src/CMakeFiles/gemsd.dir/cc/lock_table.cpp.o.d"
  "/root/repo/src/cc/primary_copy_protocol.cpp" "src/CMakeFiles/gemsd.dir/cc/primary_copy_protocol.cpp.o" "gcc" "src/CMakeFiles/gemsd.dir/cc/primary_copy_protocol.cpp.o.d"
  "/root/repo/src/cc/protocol.cpp" "src/CMakeFiles/gemsd.dir/cc/protocol.cpp.o" "gcc" "src/CMakeFiles/gemsd.dir/cc/protocol.cpp.o.d"
  "/root/repo/src/core/analytic.cpp" "src/CMakeFiles/gemsd.dir/core/analytic.cpp.o" "gcc" "src/CMakeFiles/gemsd.dir/core/analytic.cpp.o.d"
  "/root/repo/src/core/config.cpp" "src/CMakeFiles/gemsd.dir/core/config.cpp.o" "gcc" "src/CMakeFiles/gemsd.dir/core/config.cpp.o.d"
  "/root/repo/src/core/config_file.cpp" "src/CMakeFiles/gemsd.dir/core/config_file.cpp.o" "gcc" "src/CMakeFiles/gemsd.dir/core/config_file.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/gemsd.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/gemsd.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/metrics.cpp" "src/CMakeFiles/gemsd.dir/core/metrics.cpp.o" "gcc" "src/CMakeFiles/gemsd.dir/core/metrics.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/gemsd.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/gemsd.dir/core/report.cpp.o.d"
  "/root/repo/src/core/system.cpp" "src/CMakeFiles/gemsd.dir/core/system.cpp.o" "gcc" "src/CMakeFiles/gemsd.dir/core/system.cpp.o.d"
  "/root/repo/src/node/buffer_manager.cpp" "src/CMakeFiles/gemsd.dir/node/buffer_manager.cpp.o" "gcc" "src/CMakeFiles/gemsd.dir/node/buffer_manager.cpp.o.d"
  "/root/repo/src/node/log_manager.cpp" "src/CMakeFiles/gemsd.dir/node/log_manager.cpp.o" "gcc" "src/CMakeFiles/gemsd.dir/node/log_manager.cpp.o.d"
  "/root/repo/src/node/transaction_manager.cpp" "src/CMakeFiles/gemsd.dir/node/transaction_manager.cpp.o" "gcc" "src/CMakeFiles/gemsd.dir/node/transaction_manager.cpp.o.d"
  "/root/repo/src/sim/queueing.cpp" "src/CMakeFiles/gemsd.dir/sim/queueing.cpp.o" "gcc" "src/CMakeFiles/gemsd.dir/sim/queueing.cpp.o.d"
  "/root/repo/src/sim/random.cpp" "src/CMakeFiles/gemsd.dir/sim/random.cpp.o" "gcc" "src/CMakeFiles/gemsd.dir/sim/random.cpp.o.d"
  "/root/repo/src/sim/resource.cpp" "src/CMakeFiles/gemsd.dir/sim/resource.cpp.o" "gcc" "src/CMakeFiles/gemsd.dir/sim/resource.cpp.o.d"
  "/root/repo/src/sim/scheduler.cpp" "src/CMakeFiles/gemsd.dir/sim/scheduler.cpp.o" "gcc" "src/CMakeFiles/gemsd.dir/sim/scheduler.cpp.o.d"
  "/root/repo/src/sim/stats.cpp" "src/CMakeFiles/gemsd.dir/sim/stats.cpp.o" "gcc" "src/CMakeFiles/gemsd.dir/sim/stats.cpp.o.d"
  "/root/repo/src/storage/disk.cpp" "src/CMakeFiles/gemsd.dir/storage/disk.cpp.o" "gcc" "src/CMakeFiles/gemsd.dir/storage/disk.cpp.o.d"
  "/root/repo/src/storage/disk_cache.cpp" "src/CMakeFiles/gemsd.dir/storage/disk_cache.cpp.o" "gcc" "src/CMakeFiles/gemsd.dir/storage/disk_cache.cpp.o.d"
  "/root/repo/src/storage/storage_manager.cpp" "src/CMakeFiles/gemsd.dir/storage/storage_manager.cpp.o" "gcc" "src/CMakeFiles/gemsd.dir/storage/storage_manager.cpp.o.d"
  "/root/repo/src/workload/debit_credit.cpp" "src/CMakeFiles/gemsd.dir/workload/debit_credit.cpp.o" "gcc" "src/CMakeFiles/gemsd.dir/workload/debit_credit.cpp.o.d"
  "/root/repo/src/workload/router.cpp" "src/CMakeFiles/gemsd.dir/workload/router.cpp.o" "gcc" "src/CMakeFiles/gemsd.dir/workload/router.cpp.o.d"
  "/root/repo/src/workload/synthetic.cpp" "src/CMakeFiles/gemsd.dir/workload/synthetic.cpp.o" "gcc" "src/CMakeFiles/gemsd.dir/workload/synthetic.cpp.o.d"
  "/root/repo/src/workload/trace.cpp" "src/CMakeFiles/gemsd.dir/workload/trace.cpp.o" "gcc" "src/CMakeFiles/gemsd.dir/workload/trace.cpp.o.d"
  "/root/repo/src/workload/trace_generator.cpp" "src/CMakeFiles/gemsd.dir/workload/trace_generator.cpp.o" "gcc" "src/CMakeFiles/gemsd.dir/workload/trace_generator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
