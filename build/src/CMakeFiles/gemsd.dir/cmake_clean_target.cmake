file(REMOVE_RECURSE
  "libgemsd.a"
)
