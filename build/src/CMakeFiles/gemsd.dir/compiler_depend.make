# Empty compiler generated dependencies file for gemsd.
# This may be replaced when dependencies are built.
