# Empty dependencies file for bench_ablation_msg_cost.
# This may be replaced when dependencies are built.
