# Empty compiler generated dependencies file for bench_ablation_gem_auth.
# This may be replaced when dependencies are built.
