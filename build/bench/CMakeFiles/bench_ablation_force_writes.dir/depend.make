# Empty dependencies file for bench_ablation_force_writes.
# This may be replaced when dependencies are built.
