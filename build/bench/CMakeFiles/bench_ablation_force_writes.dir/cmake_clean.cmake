file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_force_writes.dir/bench_ablation_force_writes.cpp.o"
  "CMakeFiles/bench_ablation_force_writes.dir/bench_ablation_force_writes.cpp.o.d"
  "bench_ablation_force_writes"
  "bench_ablation_force_writes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_force_writes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
