# Empty compiler generated dependencies file for bench_related_lock_engine.
# This may be replaced when dependencies are built.
