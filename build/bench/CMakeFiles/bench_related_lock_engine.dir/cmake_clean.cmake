file(REMOVE_RECURSE
  "CMakeFiles/bench_related_lock_engine.dir/bench_related_lock_engine.cpp.o"
  "CMakeFiles/bench_related_lock_engine.dir/bench_related_lock_engine.cpp.o.d"
  "bench_related_lock_engine"
  "bench_related_lock_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_related_lock_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
