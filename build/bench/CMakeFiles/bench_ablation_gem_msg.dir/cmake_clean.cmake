file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_gem_msg.dir/bench_ablation_gem_msg.cpp.o"
  "CMakeFiles/bench_ablation_gem_msg.dir/bench_ablation_gem_msg.cpp.o.d"
  "bench_ablation_gem_msg"
  "bench_ablation_gem_msg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_gem_msg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
