# Empty dependencies file for bench_ablation_gem_msg.
# This may be replaced when dependencies are built.
