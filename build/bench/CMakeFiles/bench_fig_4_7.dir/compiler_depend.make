# Empty compiler generated dependencies file for bench_fig_4_7.
# This may be replaced when dependencies are built.
