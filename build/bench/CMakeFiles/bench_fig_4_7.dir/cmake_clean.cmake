file(REMOVE_RECURSE
  "CMakeFiles/bench_fig_4_7.dir/bench_fig_4_7.cpp.o"
  "CMakeFiles/bench_fig_4_7.dir/bench_fig_4_7.cpp.o.d"
  "bench_fig_4_7"
  "bench_fig_4_7.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig_4_7.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
