# Empty dependencies file for bench_fig_4_2.
# This may be replaced when dependencies are built.
