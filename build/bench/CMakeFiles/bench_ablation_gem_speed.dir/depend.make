# Empty dependencies file for bench_ablation_gem_speed.
# This may be replaced when dependencies are built.
