file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_gem_speed.dir/bench_ablation_gem_speed.cpp.o"
  "CMakeFiles/bench_ablation_gem_speed.dir/bench_ablation_gem_speed.cpp.o.d"
  "bench_ablation_gem_speed"
  "bench_ablation_gem_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_gem_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
