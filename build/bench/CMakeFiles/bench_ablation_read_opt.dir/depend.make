# Empty dependencies file for bench_ablation_read_opt.
# This may be replaced when dependencies are built.
